// Package alias implements the memory analyses that power the PDG. Two
// stacks are provided, mirroring the paper's setup: TypeBasicAA plays the
// role of LLVM's basic/type-based alias analysis (the Figure 3 baseline),
// and Andersen-style whole-module points-to plays the role of the external
// SVF/SCAF analyses NOELLE integrates. Combined is the SCAF-like
// collaborative framework that intersects every registered analysis.
package alias

import "noelle/internal/ir"

// Result is a three-valued alias verdict.
type Result int

// Alias verdicts.
const (
	MayAlias Result = iota
	NoAlias
	MustAlias
)

// String renders the verdict.
func (r Result) String() string {
	switch r {
	case NoAlias:
		return "no"
	case MustAlias:
		return "must"
	default:
		return "may"
	}
}

// Analysis answers whether two pointer values may address the same memory.
type Analysis interface {
	// Name identifies the analysis in diagnostics and ablations.
	Name() string
	// Alias relates two pointer-typed values.
	Alias(a, b ir.Value) Result
}

// Combined intersects the verdicts of several analyses: one NoAlias proof
// suffices (the SCAF observation that analyses have complementary
// strengths), and one MustAlias proof upgrades a May.
type Combined struct {
	AAs []Analysis
}

// NewCombined builds a collaborative analysis from the given stack.
func NewCombined(aas ...Analysis) *Combined { return &Combined{AAs: aas} }

// Name implements Analysis.
func (c *Combined) Name() string { return "combined" }

// Alias implements Analysis by intersecting member verdicts.
func (c *Combined) Alias(a, b ir.Value) Result {
	out := MayAlias
	for _, aa := range c.AAs {
		switch aa.Alias(a, b) {
		case NoAlias:
			return NoAlias
		case MustAlias:
			out = MustAlias
		}
	}
	return out
}

// baseAndOffset peels constant-index ptradd chains, returning the
// underlying base value, the accumulated constant byte offset, and whether
// the offset is exactly known.
func baseAndOffset(v ir.Value) (base ir.Value, off int64, known bool) {
	off = 0
	known = true
	for {
		in, ok := v.(*ir.Instr)
		if !ok || in.Opcode != ir.OpPtrAdd {
			return v, off, known
		}
		idx, isConst := in.Ops[1].(*ir.Const)
		if !isConst {
			known = false
			// Keep peeling to find the base, but the offset is lost.
			v = in.Ops[0]
			continue
		}
		elemSize := int64(8)
		if in.Ty.IsPtr() {
			elemSize = int64(in.Ty.Elem.Size())
		}
		off += idx.Int * elemSize
		v = in.Ops[0]
	}
}

// isIdentifiedObject reports whether v directly names a distinct memory
// object (an alloca or a global), as opposed to a pointer that arrived via
// a parameter, load, or call.
func isIdentifiedObject(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Global:
		return true
	case *ir.Instr:
		return x.Opcode == ir.OpAlloca
	}
	return false
}

// TypeBasicAA approximates LLVM's basic alias analysis plus TBAA:
// distinct identified objects never alias, same-base pointers with
// different constant offsets never alias, and pointers to different scalar
// types never alias. Everything else is MayAlias.
type TypeBasicAA struct{}

// Name implements Analysis.
func (TypeBasicAA) Name() string { return "type-basic" }

// Alias implements Analysis.
func (TypeBasicAA) Alias(a, b ir.Value) Result {
	if a == b {
		return MustAlias
	}
	ba, offA, knownA := baseAndOffset(a)
	bb, offB, knownB := baseAndOffset(b)

	if ba == bb {
		if knownA && knownB {
			if offA == offB {
				return MustAlias
			}
			// Accessing scalars: distinct offsets within one object cannot
			// overlap (accesses are cell-sized).
			return NoAlias
		}
		return MayAlias
	}
	// Distinct identified objects are disjoint storage.
	if isIdentifiedObject(ba) && isIdentifiedObject(bb) {
		return NoAlias
	}
	// TBAA-style: a pointer to int cannot alias a pointer to float.
	ta, tb := a.Type(), b.Type()
	if ta.IsPtr() && tb.IsPtr() {
		ea, eb := scalarPointee(ta.Elem), scalarPointee(tb.Elem)
		if ea != nil && eb != nil && !ea.Equal(eb) {
			return NoAlias
		}
	}
	return MayAlias
}

func scalarPointee(t *ir.Type) *ir.Type {
	for t.Kind == ir.ArrayKind {
		t = t.Elem
	}
	switch t.Kind {
	case ir.I64Kind, ir.F64Kind, ir.I1Kind, ir.FuncKind:
		return t
	}
	return nil
}
