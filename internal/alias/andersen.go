package alias

import (
	"sort"

	"noelle/internal/ir"
)

// An object is an abstract memory location: an alloca instruction, a
// global, or a function (for function pointers). Objects are identified by
// the ir.Value that creates them.

// objSet is a small set of objects with stable iteration order.
type objSet struct {
	m map[ir.Value]bool
}

func newObjSet() *objSet { return &objSet{m: map[ir.Value]bool{}} }

func (s *objSet) add(v ir.Value) bool {
	if s.m[v] {
		return false
	}
	s.m[v] = true
	return true
}

func (s *objSet) addAll(o *objSet) bool {
	changed := false
	for v := range o.m {
		if s.add(v) {
			changed = true
		}
	}
	return changed
}

func (s *objSet) has(v ir.Value) bool { return s.m[v] }
func (s *objSet) size() int           { return len(s.m) }

func (s *objSet) intersects(o *objSet) bool {
	a, b := s, o
	if b.size() < a.size() {
		a, b = b, a
	}
	for v := range a.m {
		if b.m[v] {
			return true
		}
	}
	return false
}

// PointsTo is a whole-module, flow-insensitive, inclusion-based
// (Andersen-style) points-to analysis with interprocedural argument and
// return binding, including through indirect calls discovered during the
// fixed point. It is the stand-in for the SVF and SCAF analyses that power
// NOELLE's PDG in the paper.
type PointsTo struct {
	Mod *ir.Module

	pts  map[ir.Value]*objSet // SSA value -> objects it may point to
	heap map[ir.Value]*objSet // object -> objects its cells may point to

	// Per-function transitive memory summaries (mod/ref).
	reads  map[*ir.Function]*objSet
	writes map[*ir.Function]*objSet

	// pureExterns do not access program memory (I/O and runtime hooks).
	pureExterns map[string]bool
	// io marks functions that may (transitively) perform externally
	// visible side effects (calls to any declaration).
	io map[*ir.Function]bool
}

// NewPointsTo runs the analysis over m to a fixed point.
func NewPointsTo(m *ir.Module) *PointsTo {
	pt := &PointsTo{
		Mod:    m,
		pts:    map[ir.Value]*objSet{},
		heap:   map[ir.Value]*objSet{},
		reads:  map[*ir.Function]*objSet{},
		writes: map[*ir.Function]*objSet{},
		pureExterns: map[string]bool{
			"print_i64": true, "print_f64": true,
			"carat_guard": true, "os_callback": true, "clock_set": true,
		},
		io: map[*ir.Function]bool{},
	}
	pt.solve()
	pt.summarize()
	pt.summarizeIO()
	return pt
}

// summarizeIO computes which functions may (transitively) call externs:
// those have externally visible effects even when they touch no memory.
func (pt *PointsTo) summarizeIO() {
	for _, f := range pt.Mod.Functions {
		if f.IsDeclaration() {
			pt.io[f] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for _, f := range pt.Mod.Functions {
			if pt.io[f] {
				continue
			}
			f.Instrs(func(in *ir.Instr) bool {
				if in.Opcode != ir.OpCall {
					return true
				}
				for _, callee := range pt.Callees(in) {
					if pt.io[callee] {
						pt.io[f] = true
						changed = true
						return false
					}
				}
				return true
			})
		}
	}
}

// FuncHasSideEffects reports whether f may perform externally visible I/O
// (transitively calls a declaration).
func (pt *PointsTo) FuncHasSideEffects(f *ir.Function) bool { return pt.io[f] }

// CallIsPure reports whether the call provably has no memory access and no
// externally visible side effect — the condition for hoisting it.
func (pt *PointsTo) CallIsPure(call *ir.Instr) bool {
	callees := pt.Callees(call)
	if len(callees) == 0 {
		return false // unknown target: assume the worst
	}
	for _, callee := range callees {
		if pt.io[callee] || pt.FuncAccessesMemory(callee) {
			return false
		}
	}
	return true
}

func (pt *PointsTo) setOf(v ir.Value) *objSet {
	s, ok := pt.pts[v]
	if !ok {
		s = newObjSet()
		pt.pts[v] = s
	}
	return s
}

func (pt *PointsTo) heapOf(obj ir.Value) *objSet {
	s, ok := pt.heap[obj]
	if !ok {
		s = newObjSet()
		pt.heap[obj] = s
	}
	return s
}

// solve iterates the inclusion constraints to a fixed point. Module sizes
// in this repo are small, so a simple round-robin loop is fine.
func (pt *PointsTo) solve() {
	// Seed: address-taking values.
	for _, g := range pt.Mod.Globals {
		pt.setOf(g).add(g)
	}
	for _, f := range pt.Mod.Functions {
		pt.setOf(f).add(f)
		f.Instrs(func(in *ir.Instr) bool {
			if in.Opcode == ir.OpAlloca {
				pt.setOf(in).add(in)
			}
			return true
		})
	}

	changed := true
	for changed {
		changed = false
		for _, f := range pt.Mod.Functions {
			f.Instrs(func(in *ir.Instr) bool {
				switch in.Opcode {
				case ir.OpPtrAdd:
					// Field-insensitive: derived pointer points into the
					// same objects as the base.
					if pt.setOf(in).addAll(pt.valSet(in.Ops[0])) {
						changed = true
					}
				case ir.OpPhi, ir.OpSelect:
					ops := in.Ops
					if in.Opcode == ir.OpSelect {
						ops = in.Ops[1:]
					}
					for _, op := range ops {
						if pt.setOf(in).addAll(pt.valSet(op)) {
							changed = true
						}
					}
				case ir.OpP2I, ir.OpI2P:
					// Address casts carry provenance through integers.
					if pt.setOf(in).addAll(pt.valSet(in.Ops[0])) {
						changed = true
					}
				case ir.OpLoad:
					// Loads propagate unconditionally: integer cells may
					// carry pointer bits (p2i round trips through task
					// environments).
					for obj := range pt.valSet(in.Ops[0]).m {
						if pt.setOf(in).addAll(pt.heapOf(obj)) {
							changed = true
						}
					}
				case ir.OpStore:
					if src := pt.valSet(in.Ops[0]); src.size() > 0 {
						for obj := range pt.valSet(in.Ops[1]).m {
							if pt.heapOf(obj).addAll(src) {
								changed = true
							}
						}
					}
				case ir.OpCall:
					if pt.bindCall(in) {
						changed = true
					}
				}
				return true
			})
		}
	}
}

// valSet returns the points-to set of v, materializing singletons for
// direct object references. It mutates the analysis state and is only
// safe during construction (solve/summarize); queries after the fixed
// point use the read-only lookup instead.
func (pt *PointsTo) valSet(v ir.Value) *objSet {
	s := pt.setOf(v)
	switch v.(type) {
	case *ir.Global, *ir.Function:
		s.add(v)
	}
	return s
}

// emptySet is the shared result for values the solver never saw. It must
// never be mutated.
var emptySet = newObjSet()

// lookup is the read-only twin of valSet: it never materializes entries,
// so concurrent queries after construction are safe (the demand-driven
// manager builds function PDGs in parallel against one PointsTo). Every
// global, function, and alloca is seeded during solve, so the only values
// that miss are those with genuinely unknown provenance.
func (pt *PointsTo) lookup(v ir.Value) *objSet {
	if s, ok := pt.pts[v]; ok {
		return s
	}
	return emptySet
}

func pointerLike(t *ir.Type) bool {
	return t != nil && (t.Kind == ir.PtrKind || t.Kind == ir.FuncKind)
}

// bindCall propagates points-to facts across a call site: arguments into
// parameters and the callee's return values into the call's result.
func (pt *PointsTo) bindCall(call *ir.Instr) bool {
	changed := false
	for _, callee := range pt.Callees(call) {
		if callee.IsDeclaration() {
			continue
		}
		args := call.CallArgs()
		for i, p := range callee.Params {
			if i < len(args) && pointerLike(p.Ty) {
				if pt.setOf(p).addAll(pt.valSet(args[i])) {
					changed = true
				}
			}
		}
		if call.HasResult() && pointerLike(call.Ty) {
			for _, b := range callee.Blocks {
				t := b.Terminator()
				if t != nil && t.Opcode == ir.OpRet && len(t.Ops) == 1 {
					if pt.setOf(call).addAll(pt.valSet(t.Ops[0])) {
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// Callees returns the possible targets of a call instruction: the static
// callee for direct calls, or every function in the callee operand's
// points-to set for indirect ones.
func (pt *PointsTo) Callees(call *ir.Instr) []*ir.Function {
	if f := call.CalledFunction(); f != nil {
		return []*ir.Function{f}
	}
	var out []*ir.Function
	for obj := range pt.lookup(call.Ops[0]).m {
		if f, ok := obj.(*ir.Function); ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nam < out[j].Nam })
	return out
}

// summarize computes per-function transitive read/write object sets.
// Callee summaries are imported through an export filter: allocas owned by
// the callee that never escape it are private per activation, so they
// cannot induce cross-call conflicts in the caller (this is what lets two
// calls to a Monte-Carlo path function with a local RNG state run in
// parallel).
func (pt *PointsTo) summarize() {
	escaping := pt.escapingAllocas()
	exported := func(f *ir.Function, s *objSet) *objSet {
		out := newObjSet()
		for obj := range s.m {
			if a, ok := obj.(*ir.Instr); ok && a.Opcode == ir.OpAlloca &&
				a.Parent != nil && a.Parent.Parent == f && !escaping[a] {
				continue // activation-private storage
			}
			out.add(obj)
		}
		return out
	}
	for _, f := range pt.Mod.Functions {
		pt.reads[f] = newObjSet()
		pt.writes[f] = newObjSet()
	}
	changed := true
	for changed {
		changed = false
		for _, f := range pt.Mod.Functions {
			r, w := pt.reads[f], pt.writes[f]
			f.Instrs(func(in *ir.Instr) bool {
				switch in.Opcode {
				case ir.OpLoad:
					if r.addAll(pt.valSet(in.Ops[0])) {
						changed = true
					}
				case ir.OpStore:
					if w.addAll(pt.valSet(in.Ops[1])) {
						changed = true
					}
				case ir.OpCall:
					for _, callee := range pt.Callees(in) {
						if callee.IsDeclaration() && pt.pureExterns[callee.Nam] {
							continue
						}
						if callee.IsDeclaration() {
							// Unknown extern: assume it can touch anything
							// reachable from its pointer arguments.
							for _, a := range in.CallArgs() {
								if pointerLike(a.Type()) {
									if r.addAll(pt.valSet(a)) {
										changed = true
									}
									if w.addAll(pt.valSet(a)) {
										changed = true
									}
								}
							}
							continue
						}
						if r.addAll(exported(callee, pt.reads[callee])) {
							changed = true
						}
						if w.addAll(exported(callee, pt.writes[callee])) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	// The caller-visible sets themselves must also hide private allocas.
	for _, f := range pt.Mod.Functions {
		pt.reads[f] = exported(f, pt.reads[f])
		pt.writes[f] = exported(f, pt.writes[f])
	}
}

// escapingAllocas finds allocas whose address leaves their activation:
// stored into memory, or returned.
func (pt *PointsTo) escapingAllocas() map[*ir.Instr]bool {
	esc := map[*ir.Instr]bool{}
	mark := func(s *objSet) {
		for obj := range s.m {
			if a, ok := obj.(*ir.Instr); ok && a.Opcode == ir.OpAlloca {
				esc[a] = true
			}
		}
	}
	for _, heap := range pt.heap {
		mark(heap)
	}
	for _, f := range pt.Mod.Functions {
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t != nil && t.Opcode == ir.OpRet && len(t.Ops) == 1 {
				mark(pt.valSet(t.Ops[0]))
			}
		}
	}
	return esc
}

// PointsToSet returns the objects v may point to, in deterministic order.
func (pt *PointsTo) PointsToSet(v ir.Value) []ir.Value {
	s := pt.lookup(v)
	out := make([]ir.Value, 0, s.size())
	for obj := range s.m {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ident() < out[j].Ident() })
	return out
}

// ModRef classifies how a call may access the memory addressed by ptr.
type ModRef int

// ModRef lattice.
const (
	NoModRef ModRef = iota
	RefOnly
	ModOnly
	ModAndRef
)

// CallModRefPtr reports whether call's possible callees may read or write
// the memory ptr addresses.
func (pt *PointsTo) CallModRefPtr(call *ir.Instr, ptr ir.Value) ModRef {
	target := pt.lookup(ptr)
	mayRead, mayWrite := false, false
	unknownTarget := target.size() == 0
	for _, callee := range pt.Callees(call) {
		if callee.IsDeclaration() {
			if pt.pureExterns[callee.Nam] {
				continue
			}
			mayRead, mayWrite = true, true
			break
		}
		if unknownTarget {
			// ptr with empty points-to set (e.g. from an extern): be
			// conservative against functions that touch any memory.
			if pt.reads[callee].size() > 0 {
				mayRead = true
			}
			if pt.writes[callee].size() > 0 {
				mayWrite = true
			}
			continue
		}
		if pt.reads[callee].intersects(target) {
			mayRead = true
		}
		if pt.writes[callee].intersects(target) {
			mayWrite = true
		}
	}
	switch {
	case mayRead && mayWrite:
		return ModAndRef
	case mayWrite:
		return ModOnly
	case mayRead:
		return RefOnly
	default:
		return NoModRef
	}
}

// CallsAccessMemory reports whether the two calls may touch overlapping
// memory (used for call-call ordering dependences).
func (pt *PointsTo) CallsAccessMemory(a, b *ir.Instr) bool {
	ra, wa := pt.callAccess(a)
	rb, wb := pt.callAccess(b)
	// Write-write, write-read, read-write conflicts order the calls.
	return wa.intersects(wb) || wa.intersects(rb) || ra.intersects(wb)
}

func (pt *PointsTo) callAccess(call *ir.Instr) (reads, writes *objSet) {
	reads, writes = newObjSet(), newObjSet()
	for _, callee := range pt.Callees(call) {
		if callee.IsDeclaration() {
			if pt.pureExterns[callee.Nam] {
				continue
			}
			for _, a := range call.CallArgs() {
				if pointerLike(a.Type()) {
					reads.addAll(pt.lookup(a))
					writes.addAll(pt.lookup(a))
				}
			}
			continue
		}
		reads.addAll(pt.reads[callee])
		writes.addAll(pt.writes[callee])
	}
	return reads, writes
}

// FuncAccessesMemory reports whether f may read or write program memory.
func (pt *PointsTo) FuncAccessesMemory(f *ir.Function) bool {
	if f.IsDeclaration() {
		return !pt.pureExterns[f.Nam]
	}
	return pt.reads[f].size() > 0 || pt.writes[f].size() > 0
}

// AndersenAA adapts PointsTo to the Analysis interface.
type AndersenAA struct{ PT *PointsTo }

// Name implements Analysis.
func (AndersenAA) Name() string { return "andersen" }

// Alias implements Analysis: disjoint points-to sets prove NoAlias; two
// pointers directly naming the same single object are MustAlias.
func (a AndersenAA) Alias(x, y ir.Value) Result {
	if x == y {
		return MustAlias
	}
	sx, sy := a.PT.lookup(x), a.PT.lookup(y)
	if sx.size() == 0 || sy.size() == 0 {
		return MayAlias // unknown provenance
	}
	if !sx.intersects(sy) {
		return NoAlias
	}
	return MayAlias
}
