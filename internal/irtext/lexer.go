// Package irtext parses the textual IR format produced by ir.Print. The
// noelle-* command line tools exchange whole-program IR files in this
// format, mirroring how the paper's tools exchange LLVM bitcode.
package irtext

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokLocal  // %name
	tokGlobal // @name
	tokInt    // 123, -4
	tokFloat  // 1.5, -2e3
	tokString // "..."
	tokPunct  // single punctuation rune
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func isIdentRune(r byte) bool {
	return r == '_' || r == '.' ||
		(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

// lex tokenizes the whole input. Comments run from ';' to end of line.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '%' || c == '@':
			kind := tokLocal
			if c == '@' {
				kind = tokGlobal
			}
			start := l.pos + 1
			l.pos++
			for l.pos < len(l.src) && isIdentRune(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start {
				return nil, fmt.Errorf("line %d: empty %c-identifier", l.line, c)
			}
			l.emit(kind, l.src[start:l.pos])
		case c == '-' || (c >= '0' && c <= '9'):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentRune(c) && !unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentRune(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos])
		case strings.ContainsRune("(){}[]<>,:=!", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			l.pos += 2
		case '"':
			l.pos++
			l.emit(tokString, l.src[start:l.pos])
			return nil
		case '\n':
			return fmt.Errorf("line %d: newline in string", l.line)
		default:
			l.pos++
		}
	}
	return fmt.Errorf("line %d: unterminated string", l.line)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.':
			isFloat = true
			l.pos++
		case c == 'e' || c == 'E':
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if text == "-" {
		return fmt.Errorf("line %d: lone '-'", l.line)
	}
	if isFloat {
		l.emit(tokFloat, text)
	} else {
		l.emit(tokInt, text)
	}
	return nil
}
