package irtext

import (
	"fmt"
	"strconv"

	"noelle/internal/ir"
)

// Parse reads a textual IR module (the format emitted by ir.Print) and
// reconstructs the module. The result is verified before being returned.
func Parse(src string) (*ir.Module, error) {
	m, err := ParseUnverified(src)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("parsed module is malformed: %w", err)
	}
	return m, nil
}

// ParseUnverified reads a module without the final verification step.
// It exists for tooling that needs deliberately malformed modules in
// memory — the static verifier's corpus of hand-broken inputs, fuzzing
// harnesses probing the verifier itself — and must not be used by
// anything that will execute the result.
func ParseUnverified(src string) (*ir.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseModule()
}

type parser struct {
	toks []token
	pos  int
	mod  *ir.Module
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != s {
		return fmt.Errorf("line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.peek().kind == tokPunct && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseString() (string, error) {
	t := p.next()
	if t.kind != tokString {
		return "", fmt.Errorf("line %d: expected string, got %q", t.line, t.text)
	}
	return strconv.Unquote(t.text)
}

func (p *parser) parseModule() (*ir.Module, error) {
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	name, err := p.parseString()
	if err != nil {
		return nil, err
	}
	p.mod = ir.NewModule(name)

	// Pre-scan: create function shells for every definition so bodies can
	// reference functions defined later in the file.
	if err := p.prescanFuncs(); err != nil {
		return nil, err
	}

	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errf("expected top-level declaration, got %q", t.text)
		}
		switch t.text {
		case "linkopt":
			p.next()
			s, err := p.parseString()
			if err != nil {
				return nil, err
			}
			p.mod.LinkOptions = append(p.mod.LinkOptions, s)
		case "meta":
			p.next()
			k, err := p.parseString()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			v, err := p.parseString()
			if err != nil {
				return nil, err
			}
			p.mod.SetMD(k, v)
		case "global":
			if err := p.parseGlobal(); err != nil {
				return nil, err
			}
		case "declare":
			if err := p.parseDeclare(); err != nil {
				return nil, err
			}
		case "func":
			if err := p.parseFunc(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unknown top-level keyword %q", t.text)
		}
	}
	return p.mod, nil
}

// prescanFuncs walks the token stream at brace depth zero and registers a
// shell for every `func @name(...) ret` definition.
func (p *parser) prescanFuncs() error {
	save := p.pos
	defer func() { p.pos = save }()
	depth := 0
	for p.peek().kind != tokEOF {
		t := p.next()
		switch {
		case t.kind == tokPunct && t.text == "{":
			depth++
		case t.kind == tokPunct && t.text == "}":
			depth--
		case depth == 0 && t.kind == tokIdent && t.text == "func":
			name, sig, paramNames, err := p.parseFuncSignature()
			if err != nil {
				return err
			}
			if p.mod.FunctionByName(name) == nil {
				p.mod.AddFunction(ir.NewFunction(name, sig, paramNames...))
			}
		}
	}
	return nil
}

// parseFuncSignature parses `@name(%p: ty, ...) ret` (after the `func`
// keyword), leaving the cursor after the return type.
func (p *parser) parseFuncSignature() (string, *ir.Type, []string, error) {
	nameTok := p.next()
	if nameTok.kind != tokGlobal {
		return "", nil, nil, fmt.Errorf("line %d: expected @name after func", nameTok.line)
	}
	if err := p.expectPunct("("); err != nil {
		return "", nil, nil, err
	}
	var paramNames []string
	var paramTypes []*ir.Type
	for !p.acceptPunct(")") {
		if len(paramNames) > 0 {
			if err := p.expectPunct(","); err != nil {
				return "", nil, nil, err
			}
		}
		pn := p.next()
		if pn.kind != tokLocal {
			return "", nil, nil, fmt.Errorf("line %d: expected %%param", pn.line)
		}
		if err := p.expectPunct(":"); err != nil {
			return "", nil, nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return "", nil, nil, err
		}
		paramNames = append(paramNames, pn.text)
		paramTypes = append(paramTypes, pt)
	}
	ret, err := p.parseType()
	if err != nil {
		return "", nil, nil, err
	}
	return nameTok.text, ir.FuncOf(ret, paramTypes...), paramNames, nil
}

func (p *parser) parseType() (*ir.Type, error) {
	t := p.next()
	switch {
	case t.kind == tokIdent && t.text == "void":
		return ir.VoidType, nil
	case t.kind == tokIdent && t.text == "i1":
		return ir.I1Type, nil
	case t.kind == tokIdent && t.text == "i64":
		return ir.I64Type, nil
	case t.kind == tokIdent && t.text == "f64":
		return ir.F64Type, nil
	case t.kind == tokIdent && t.text == "ptr":
		if err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		return ir.PointerTo(elem), nil
	case t.kind == tokPunct && t.text == "[":
		n := p.next()
		if n.kind != tokInt {
			return nil, fmt.Errorf("line %d: expected array length", n.line)
		}
		length, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, err
		}
		if err := p.expectIdent("x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return ir.ArrayOf(elem, length), nil
	case t.kind == tokIdent && t.text == "fn":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var params []*ir.Type
		for !p.acceptPunct(")") {
			if len(params) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			params = append(params, pt)
		}
		ret, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return ir.FuncOf(ret, params...), nil
	}
	return nil, fmt.Errorf("line %d: expected type, got %q", t.line, t.text)
}

// parseMD parses an optional `!{k="v", ...}` attachment.
func (p *parser) parseMD() (ir.Metadata, error) {
	if !(p.peek().kind == tokPunct && p.peek().text == "!") {
		return nil, nil
	}
	p.next()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	md := ir.Metadata{}
	for !p.acceptPunct("}") {
		if len(md) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		k := p.next()
		if k.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected metadata key", k.line)
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.parseString()
		if err != nil {
			return nil, err
		}
		md[k.text] = v
	}
	return md, nil
}

func (p *parser) parseGlobal() error {
	p.next() // "global"
	nameTok := p.next()
	if nameTok.kind != tokGlobal {
		return fmt.Errorf("line %d: expected @name", nameTok.line)
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	g := &ir.Global{Nam: nameTok.text, Elem: ty}
	isFloat := g.ScalarElem().IsFloat()
	if p.acceptPunct("=") {
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		first := true
		for !p.acceptPunct("}") {
			if !first {
				if err := p.expectPunct(","); err != nil {
					return err
				}
			}
			first = false
			v := p.next()
			switch {
			case isFloat && (v.kind == tokFloat || v.kind == tokInt):
				fv, err := strconv.ParseFloat(v.text, 64)
				if err != nil {
					return err
				}
				g.FInit = append(g.FInit, fv)
			case !isFloat && v.kind == tokInt:
				iv, err := strconv.ParseInt(v.text, 10, 64)
				if err != nil {
					return err
				}
				g.Init = append(g.Init, iv)
			default:
				return fmt.Errorf("line %d: bad global initializer %q", v.line, v.text)
			}
		}
	} else if err := p.expectIdent("zeroinit"); err != nil {
		return err
	}
	md, err := p.parseMD()
	if err != nil {
		return err
	}
	g.MD = md
	p.mod.AddGlobal(g)
	return nil
}

func (p *parser) parseDeclare() error {
	p.next() // "declare"
	nameTok := p.next()
	if nameTok.kind != tokGlobal {
		return fmt.Errorf("line %d: expected @name", nameTok.line)
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	sig, err := p.parseType()
	if err != nil {
		return err
	}
	if sig.Kind != ir.FuncKind {
		return fmt.Errorf("line %d: declare %s: not a function type", nameTok.line, nameTok.text)
	}
	md, err := p.parseMD()
	if err != nil {
		return err
	}
	// A definition elsewhere in the file (pre-scanned) satisfies the
	// declaration.
	if exist := p.mod.FunctionByName(nameTok.text); exist != nil {
		if !exist.Sig.Equal(sig) {
			return fmt.Errorf("line %d: declare @%s conflicts with earlier signature", nameTok.line, nameTok.text)
		}
		return nil
	}
	f := ir.NewFunction(nameTok.text, sig)
	f.MD = md
	p.mod.AddFunction(f)
	return nil
}
