package irtext

import (
	"testing"

	"noelle/internal/ir"
)

const sample = `
module "demo"
linkopt "-lm"
meta "noelle.version" = "1"

global @tab : [4 x i64] = { 1, 2, 3, 4 }
global @seed : i64 = { 99 }
global @buf : [8 x f64] zeroinit

declare @print_i64 : fn(i64) void

func @kernel(%n: i64, %p: ptr<i64>) i64 !{hot="1"} {
entry:
  %acc = alloca i64, 1
  store i64 0, %acc
  br header
header:
  %i = phi i64 [ 0, entry ], [ %i2, body ]
  %c = lt %i, %n
  condbr %c, body, exit
body:
  %q = ptradd %p, %i
  %v = load i64, %q
  %old = load i64, %acc
  %new = add %old, %v
  store i64 %new, %acc !{note="acc update"}
  %i2 = add %i, 1
  br header
exit:
  %r = load i64, %acc
  call void @print_i64(%r)
  ret %r
}

func @main() i64 {
entry:
  %t = ptradd @tab, 0
  %r = call i64 @kernel(4, %t)
  %f = sitofp %r
  %g = fadd %f, 0.5
  %h = fptosi %g
  ret %h
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Name != "demo" {
		t.Errorf("module name = %q", m.Name)
	}
	if len(m.LinkOptions) != 1 || m.LinkOptions[0] != "-lm" {
		t.Errorf("linkopts = %v", m.LinkOptions)
	}
	if m.MD.Get("noelle.version") != "1" {
		t.Errorf("module metadata = %v", m.MD)
	}
	k := m.FunctionByName("kernel")
	if k == nil {
		t.Fatal("kernel not found")
	}
	if k.MD.Get("hot") != "1" {
		t.Errorf("kernel metadata = %v", k.MD)
	}
	if len(k.Blocks) != 4 {
		t.Errorf("kernel blocks = %d, want 4", len(k.Blocks))
	}
	g := m.GlobalByName("tab")
	if g == nil || len(g.Init) != 4 || g.Init[3] != 4 {
		t.Errorf("global tab = %+v", g)
	}
	if m.FunctionByName("print_i64") == nil || !m.FunctionByName("print_i64").IsDeclaration() {
		t.Error("print_i64 declaration missing")
	}
}

// TestRoundTrip checks print -> parse -> print reaches a fixed point.
func TestRoundTrip(t *testing.T) {
	m1, err := Parse(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s1 := ir.Print(m1)
	m2, err := Parse(s1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s1)
	}
	s2 := ir.Print(m2)
	if s1 != s2 {
		t.Errorf("round trip not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bad keyword", `module "m"` + "\nbogus"},
		{"undefined value", `module "m"` + `
func @f() i64 {
entry:
  ret %nope
}`},
		{"undefined block", `module "m"` + `
func @f() i64 {
entry:
  br nowhere
}`},
		{"duplicate label", `module "m"` + `
func @f() i64 {
entry:
  br entry
entry:
  ret 0
}`},
		{"type mismatch", `module "m"` + `
func @f() i64 {
entry:
  %x = add 1, 2.5
  ret %x
}`},
		{"redefined value", `module "m"` + `
func @f() i64 {
entry:
  %x = add 1, 2
  %x = add 3, 4
  ret %x
}`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseFloatLexing(t *testing.T) {
	src := `module "m"
func @f() f64 {
entry:
  %a = fadd 1.5, -2.5
  %b = fmul %a, 1e3
  ret %b
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := m.FunctionByName("f")
	in := f.Blocks[0].Instrs[0]
	c := in.Ops[1].(*ir.Const)
	if c.Flt != -2.5 {
		t.Errorf("negative float constant = %v", c.Flt)
	}
}

func TestParseIndirectCall(t *testing.T) {
	src := `module "m"
func @callee(%x: i64) i64 {
entry:
  ret %x
}
func @main() i64 {
entry:
  %fp = alloca fn(i64) i64, 1
  store fn(i64) i64 @callee, %fp
  %f = load fn(i64) i64, %fp
  %r = call i64 %f(7)
  ret %r
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	main := m.FunctionByName("main")
	var call *ir.Instr
	main.Instrs(func(in *ir.Instr) bool {
		if in.Opcode == ir.OpCall {
			call = in
		}
		return true
	})
	if call == nil {
		t.Fatal("no call found")
	}
	if call.CalledFunction() != nil {
		t.Error("indirect call should have no static callee")
	}
}

// TestModuleFingerprintSurvivesPrintParse: the session key the compile
// service uses must be identical for a module and its textual round
// trip — that is what lets clients ship re-printed IR and still land on
// the resident warm session.
func TestModuleFingerprintSurvivesPrintParse(t *testing.T) {
	m1, err := Parse(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m2, err := Parse(ir.Print(m1))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	a, b := ir.ModuleFingerprint(m1), ir.ModuleFingerprint(m2)
	if a != b {
		t.Errorf("module fingerprint changed across print->parse: %s != %s", a.Short(), b.Short())
	}
}
