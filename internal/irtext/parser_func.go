package irtext

import (
	"fmt"
	"strconv"

	"noelle/internal/ir"
)

// fixup records a use of a local value that was not yet defined when the
// instruction was parsed (e.g. a phi over a back edge).
type fixup struct {
	in   *ir.Instr
	idx  int
	name string
	line int
}

type funcParser struct {
	p      *parser
	fn     *ir.Function
	locals map[string]ir.Value
	blocks map[string]*ir.Block
	defed  map[string]bool
	fixups []fixup
}

func (p *parser) parseFunc() error {
	line := p.peek().line
	p.next() // "func"
	name, sig, paramNames, err := p.parseFuncSignature()
	if err != nil {
		return err
	}
	md, err := p.parseMD()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}

	// The pre-scan registered a shell; fill it in.
	fn := p.mod.FunctionByName(name)
	switch {
	case fn == nil:
		fn = ir.NewFunction(name, sig, paramNames...)
		p.mod.AddFunction(fn)
	case !fn.IsDeclaration():
		return fmt.Errorf("line %d: duplicate definition of @%s", line, name)
	case !fn.Sig.Equal(sig):
		return fmt.Errorf("line %d: @%s signature mismatch with earlier declaration", line, name)
	}
	fn.MD = md

	fp := &funcParser{
		p:      p,
		fn:     fn,
		locals: map[string]ir.Value{},
		blocks: map[string]*ir.Block{},
		defed:  map[string]bool{},
	}
	for _, prm := range fn.Params {
		fp.locals[prm.Nam] = prm
	}
	return fp.parseBody()
}

func (fp *funcParser) block(name string, line int) *ir.Block {
	if b, ok := fp.blocks[name]; ok {
		return b
	}
	b := &ir.Block{Nam: name, Parent: fp.fn, ID: -1}
	fp.blocks[name] = b
	return b
}

func (fp *funcParser) parseBody() error {
	p := fp.p
	var cur *ir.Block
	for {
		t := p.peek()
		if t.kind == tokPunct && t.text == "}" {
			p.next()
			break
		}
		// Block label: ident followed by ':'.
		if t.kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ":" {
			p.next()
			p.next()
			if fp.defed[t.text] {
				return fmt.Errorf("line %d: duplicate block label %q", t.line, t.text)
			}
			b := fp.block(t.text, t.line)
			fp.defed[t.text] = true
			fp.fn.Blocks = append(fp.fn.Blocks, b)
			md, err := p.parseMD()
			if err != nil {
				return err
			}
			b.MD = md
			cur = b
			continue
		}
		if cur == nil {
			return fmt.Errorf("line %d: instruction before first block label", t.line)
		}
		in, err := fp.parseInstr()
		if err != nil {
			return err
		}
		cur.Append(in)
		if in.HasResult() || in.Nam != "" {
			if _, dup := fp.locals[in.Nam]; dup {
				return fmt.Errorf("line %d: redefinition of %%%s", t.line, in.Nam)
			}
			fp.locals[in.Nam] = in
		}
	}

	// Resolve deferred local references.
	for _, fx := range fp.fixups {
		v, ok := fp.locals[fx.name]
		if !ok {
			return fmt.Errorf("line %d: undefined value %%%s", fx.line, fx.name)
		}
		fx.in.Ops[fx.idx] = v
	}
	// All referenced blocks must have been defined.
	for name, b := range fp.blocks {
		if !fp.defed[name] {
			return fmt.Errorf("func @%s: branch to undefined block %q", fp.fn.Nam, b.Nam)
		}
	}
	// Recompute types that depend on (possibly forward) operands.
	fp.fn.Instrs(func(in *ir.Instr) bool {
		switch in.Opcode {
		case ir.OpPtrAdd:
			pt := in.Ops[0].Type()
			if pt.IsPtr() && pt.Elem.Kind == ir.ArrayKind {
				in.Ty = ir.PointerTo(pt.Elem.Elem)
			} else {
				in.Ty = pt
			}
		case ir.OpSelect:
			in.Ty = in.Ops[1].Type()
		}
		return true
	})
	return nil
}

// operand parses one operand. When the operand is a not-yet-defined local,
// a nil is stored and a fixup is recorded against in/idx.
func (fp *funcParser) operand(in *ir.Instr, idx int) (ir.Value, error) {
	p := fp.p
	t := p.next()
	switch t.kind {
	case tokLocal:
		if v, ok := fp.locals[t.text]; ok {
			return v, nil
		}
		fp.fixups = append(fp.fixups, fixup{in: in, idx: idx, name: t.text, line: t.line})
		return nil, nil
	case tokGlobal:
		if f := p.mod.FunctionByName(t.text); f != nil {
			return f, nil
		}
		if g := p.mod.GlobalByName(t.text); g != nil {
			return g, nil
		}
		return nil, fmt.Errorf("line %d: unknown global @%s", t.line, t.text)
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return ir.ConstInt(v), nil
	case tokFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, err
		}
		return ir.ConstFloat(v), nil
	case tokIdent:
		switch t.text {
		case "true":
			return ir.ConstBool(true), nil
		case "false":
			return ir.ConstBool(false), nil
		}
	}
	return nil, fmt.Errorf("line %d: expected operand, got %q", t.line, t.text)
}

// addOperand parses an operand into position idx of in (growing in.Ops).
func (fp *funcParser) addOperand(in *ir.Instr) error {
	idx := len(in.Ops)
	in.Ops = append(in.Ops, nil)
	v, err := fp.operand(in, idx)
	if err != nil {
		return err
	}
	in.Ops[idx] = v
	return nil
}

func (fp *funcParser) parseInstr() (*ir.Instr, error) {
	p := fp.p
	in := &ir.Instr{ID: -1, Ty: ir.VoidType}

	if p.peek().kind == tokLocal {
		name := p.next().text
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		in.Nam = name
	}
	opTok := p.next()
	if opTok.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected opcode, got %q", opTok.line, opTok.text)
	}
	op := ir.OpFromName(opTok.text)
	if op == ir.OpInvalid {
		return nil, fmt.Errorf("line %d: unknown opcode %q", opTok.line, opTok.text)
	}
	in.Opcode = op

	var err error
	switch {
	case op == ir.OpAlloca:
		in.AllocaElem, err = p.parseType()
		if err != nil {
			return nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return nil, err
		}
		cnt := p.next()
		if cnt.kind != tokInt {
			return nil, fmt.Errorf("line %d: expected alloca count", cnt.line)
		}
		in.AllocaCount, err = strconv.Atoi(cnt.text)
		if err != nil {
			return nil, err
		}
		in.Ty = ir.PointerTo(in.AllocaElem)

	case op == ir.OpLoad:
		in.Ty, err = p.parseType()
		if err != nil {
			return nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return nil, err
		}
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}

	case op == ir.OpStore:
		if _, err = p.parseType(); err != nil { // value type, informative
			return nil, err
		}
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return nil, err
		}
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}

	case op == ir.OpPtrAdd:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return nil, err
		}
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = nil // recomputed after fixups

	case op == ir.OpPhi:
		in.Ty, err = p.parseType()
		if err != nil {
			return nil, err
		}
		first := true
		for first || p.acceptPunct(",") {
			first = false
			if err = p.expectPunct("["); err != nil {
				return nil, err
			}
			if err = fp.addOperand(in); err != nil {
				return nil, err
			}
			if err = p.expectPunct(","); err != nil {
				return nil, err
			}
			lbl := p.next()
			if lbl.kind != tokIdent {
				return nil, fmt.Errorf("line %d: expected phi block label", lbl.line)
			}
			in.Blocks = append(in.Blocks, fp.block(lbl.text, lbl.line))
			if err = p.expectPunct("]"); err != nil {
				return nil, err
			}
		}

	case op == ir.OpCall:
		in.Ty, err = p.parseType()
		if err != nil {
			return nil, err
		}
		if err = fp.addOperand(in); err != nil { // callee
			return nil, err
		}
		if err = p.expectPunct("("); err != nil {
			return nil, err
		}
		for !p.acceptPunct(")") {
			if len(in.Ops) > 1 {
				if err = p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			if err = fp.addOperand(in); err != nil {
				return nil, err
			}
		}
		if in.Ty.Kind == ir.VoidKind {
			in.Nam = ""
		}

	case op == ir.OpBr:
		lbl := p.next()
		if lbl.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected branch target", lbl.line)
		}
		in.Blocks = []*ir.Block{fp.block(lbl.text, lbl.line)}

	case op == ir.OpCondBr:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			if err = p.expectPunct(","); err != nil {
				return nil, err
			}
			lbl := p.next()
			if lbl.kind != tokIdent {
				return nil, fmt.Errorf("line %d: expected branch target", lbl.line)
			}
			in.Blocks = append(in.Blocks, fp.block(lbl.text, lbl.line))
		}

	case op == ir.OpRet:
		if p.peek().kind == tokIdent && p.peek().text == "void" {
			p.next()
		} else if err = fp.addOperand(in); err != nil {
			return nil, err
		}

	case op == ir.OpSelect:
		for i := 0; i < 3; i++ {
			if i > 0 {
				if err = p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			if err = fp.addOperand(in); err != nil {
				return nil, err
			}
		}
		in.Ty = nil // recomputed after fixups

	case op.IsBinaryOp() || op.IsCompare():
		for i := 0; i < 2; i++ {
			if i > 0 {
				if err = p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			if err = fp.addOperand(in); err != nil {
				return nil, err
			}
		}
		switch {
		case op.IsCompare():
			in.Ty = ir.I1Type
		case op >= ir.OpFAdd && op <= ir.OpFDiv:
			in.Ty = ir.F64Type
		default:
			in.Ty = ir.I64Type
		}

	case op == ir.OpSIToFP:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = ir.F64Type
	case op == ir.OpFPToSI:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = ir.I64Type
	case op == ir.OpZExt:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = ir.I64Type
	case op == ir.OpTrunc:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = ir.I1Type
	case op == ir.OpFBits:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = ir.I64Type
	case op == ir.OpBitsF:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = ir.F64Type
	case op == ir.OpP2I:
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}
		in.Ty = ir.I64Type
	case op == ir.OpI2P:
		in.Ty, err = p.parseType()
		if err != nil {
			return nil, err
		}
		if err = p.expectPunct(","); err != nil {
			return nil, err
		}
		if err = fp.addOperand(in); err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("line %d: cannot parse opcode %q", opTok.line, opTok.text)
	}

	md, err := p.parseMD()
	if err != nil {
		return nil, err
	}
	in.MD = md
	return in, nil
}
