package minic

// CType is a source-level type: int, float, void, pointers, arrays, and
// function types (used both for declarations and function-pointer values).
type CType struct {
	Kind   CKind
	Elem   *CType // pointer/array element
	Len    int    // array length
	Params []*CType
	Ret    *CType
}

// CKind discriminates source types.
type CKind int

// Source type kinds.
const (
	CInt CKind = iota
	CFloat
	CVoid
	CPtr
	CArray
	CFunc
)

// Pre-built scalar types.
var (
	TInt   = &CType{Kind: CInt}
	TFloat = &CType{Kind: CFloat}
	TVoid  = &CType{Kind: CVoid}
)

func cPtr(elem *CType) *CType          { return &CType{Kind: CPtr, Elem: elem} }
func cArray(elem *CType, n int) *CType { return &CType{Kind: CArray, Elem: elem, Len: n} }

func (t *CType) equal(u *CType) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case CPtr:
		return t.Elem.equal(u.Elem)
	case CArray:
		return t.Len == u.Len && t.Elem.equal(u.Elem)
	case CFunc:
		if !t.Ret.equal(u.Ret) || len(t.Params) != len(u.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].equal(u.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

func (t *CType) String() string {
	switch t.Kind {
	case CInt:
		return "int"
	case CFloat:
		return "float"
	case CVoid:
		return "void"
	case CPtr:
		return t.Elem.String() + "*"
	case CArray:
		return t.Elem.String() + "[]"
	case CFunc:
		s := "func("
		for i, p := range t.Params {
			if i > 0 {
				s += ","
			}
			s += p.String()
		}
		return s + ") " + t.Ret.String()
	}
	return "?"
}

// Program is a parsed translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	Externs []*FuncDecl // extern declarations (no body)
}

// GlobalDecl declares a module-level variable, optionally initialized with
// constant scalars.
type GlobalDecl struct {
	Name  string
	Type  *CType
	Init  []int64
	FInit []float64
	Line  int
}

// FuncDecl is a function definition or extern declaration.
type FuncDecl struct {
	Name   string
	Params []ParamDecl
	Ret    *CType
	Body   *BlockStmt // nil for externs
	Line   int
}

// ParamDecl is a formal parameter.
type ParamDecl struct {
	Name string
	Type *CType
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct{ Stmts []Stmt }

// DeclStmt declares a local variable with an optional initializer.
type DeclStmt struct {
	Name string
	Type *CType
	Init Expr // nil when absent
	Line int
}

// AssignStmt is lhs = rhs.
type AssignStmt struct {
	LHS  Expr // must be an lvalue
	RHS  Expr
	Line int
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if (cond) then else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
	Line int
}

// WhileStmt is while (cond) body, or do body while (cond) when DoWhile.
type WhileStmt struct {
	Cond    Expr
	Body    *BlockStmt
	DoWhile bool
	Line    int
}

// ForStmt is for (init; cond; post) body.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body *BlockStmt
	Line int
}

// ReturnStmt returns a value (or nothing).
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's continuation point.
type ContinueStmt struct{ Line int }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val  int64
	Line int
}

// FloatLit is a float literal.
type FloatLit struct {
	Val  float64
	Line int
}

// Ident references a variable or function by name.
type Ident struct {
	Name string
	Line int
}

// Unary is op X, with op one of - ! * & ~.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is X op Y.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Index is X[I].
type Index struct {
	X    Expr
	I    Expr
	Line int
}

// CallExpr is Fn(Args...). Fn may be an Ident naming a function or any
// expression of function type (a function pointer).
type CallExpr struct {
	Fn   Expr
	Args []Expr
	Line int
}

// Cast converts X to a scalar type: (int)x or (float)x.
type Cast struct {
	To   *CType
	X    Expr
	Line int
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ident) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Index) exprNode()    {}
func (*CallExpr) exprNode() {}
func (*Cast) exprNode()     {}
