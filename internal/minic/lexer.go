// Package minic implements a small C-like frontend that compiles to the IR.
// It stands in for clang in the paper's pipeline: the 41-benchmark corpus is
// written in this language, lowered to SSA, and consumed by the noelle-*
// tools. The language has 64-bit ints, 64-bit floats, pointers, fixed-size
// arrays, function pointers, and the usual C control flow (if/while/do/for,
// break/continue, short-circuit && and ||).
package minic

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

var keywords = map[string]bool{
	"int": true, "float": true, "void": true, "func": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true, "extern": true,
}

// Tok is a lexical token.
type Tok struct {
	Kind TokKind
	Text string
	Line int
}

func (t Tok) String() string {
	if t.Kind == TokEOF {
		return "<eof>"
	}
	return t.Text
}

// Lex tokenizes src. Comments are // to end of line and /* */.
func Lex(src string) ([]Tok, error) {
	var toks []Tok
	line := 1
	i := 0
	emit := func(kind TokKind, text string) { toks = append(toks, Tok{kind, text, line}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated comment", line)
			}
			i += 2
		case isAlpha(c):
			start := i
			for i < len(src) && (isAlpha(src[i]) || isDigit(src[i])) {
				i++
			}
			word := src[start:i]
			if keywords[word] {
				emit(TokKeyword, word)
			} else {
				emit(TokIdent, word)
			}
		case isDigit(c):
			start := i
			isFloat := false
			for i < len(src) && (isDigit(src[i]) || src[i] == '.' || src[i] == 'e' || src[i] == 'E') {
				if src[i] == '.' || src[i] == 'e' || src[i] == 'E' {
					isFloat = true
					if (src[i] == 'e' || src[i] == 'E') && i+1 < len(src) && (src[i+1] == '+' || src[i+1] == '-') {
						i++
					}
				}
				i++
			}
			if isFloat {
				emit(TokFloat, src[start:i])
			} else {
				emit(TokInt, src[start:i])
			}
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->":
				emit(TokPunct, two)
				i += 2
				continue
			}
			if strings.ContainsRune("+-*/%<>=!&|^~(){}[];,.", rune(c)) {
				emit(TokPunct, string(c))
				i++
				continue
			}
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	emit(TokEOF, "")
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
