package minic

import (
	"fmt"

	"noelle/internal/ir"
)

// genExpr evaluates e for its value; void-typed expressions are an error.
func (g *codegen) genExpr(e Expr) (ir.Value, *CType, error) {
	v, vt, err := g.genExprAllowVoid(e)
	if err != nil {
		return nil, nil, err
	}
	if vt.Kind == CVoid {
		return nil, nil, fmt.Errorf("void value used in expression")
	}
	return v, vt, nil
}

func (g *codegen) genExprAllowVoid(e Expr) (ir.Value, *CType, error) {
	switch x := e.(type) {
	case *IntLit:
		return ir.ConstInt(x.Val), TInt, nil
	case *FloatLit:
		return ir.ConstFloat(x.Val), TFloat, nil

	case *Ident:
		if li, ok := g.lookup(x.Name); ok {
			return g.loadVar(li)
		}
		if gi, ok := g.glbls[x.Name]; ok {
			return g.loadVar(localInfo{addr: gi.g, ctype: gi.ctype})
		}
		if fi, ok := g.funcs[x.Name]; ok {
			// A function name used as a value is a function pointer.
			return fi.fn, fi.ctype, nil
		}
		return nil, nil, fmt.Errorf("line %d: undefined name %q", x.Line, x.Name)

	case *Unary:
		return g.genUnary(x)

	case *Binary:
		return g.genBinary(x)

	case *Index:
		addr, et, err := g.genAddr(x)
		if err != nil {
			return nil, nil, err
		}
		return g.bld.CreateLoad(addr, ""), et, nil

	case *CallExpr:
		return g.genCall(x)

	case *Cast:
		v, vt, err := g.genExpr(x.X)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case x.To.Kind == CInt && vt.Kind == CFloat:
			return g.bld.CreateCast(ir.OpFPToSI, v, ""), TInt, nil
		case x.To.Kind == CFloat && vt.Kind == CInt:
			return g.bld.CreateCast(ir.OpSIToFP, v, ""), TFloat, nil
		case x.To.equal(vt):
			return v, vt, nil
		}
		return nil, nil, fmt.Errorf("line %d: cannot cast %s to %s", x.Line, vt, x.To)
	}
	return nil, nil, fmt.Errorf("minic: unhandled expression %T", e)
}

// loadVar produces the rvalue of a variable; arrays decay to element
// pointers instead of being loaded.
func (g *codegen) loadVar(li localInfo) (ir.Value, *CType, error) {
	if li.ctype.Kind == CArray {
		p := g.bld.CreatePtrAdd(li.addr, ir.ConstInt(0), "decay")
		return p, cPtr(li.ctype.Elem), nil
	}
	return g.bld.CreateLoad(li.addr, ""), li.ctype, nil
}

func (g *codegen) genUnary(x *Unary) (ir.Value, *CType, error) {
	switch x.Op {
	case "-":
		v, vt, err := g.genExpr(x.X)
		if err != nil {
			return nil, nil, err
		}
		switch vt.Kind {
		case CInt:
			return g.bld.CreateBinOp(ir.OpSub, ir.ConstInt(0), v, ""), TInt, nil
		case CFloat:
			return g.bld.CreateBinOp(ir.OpFSub, ir.ConstFloat(0), v, ""), TFloat, nil
		}
		return nil, nil, fmt.Errorf("line %d: cannot negate %s", x.Line, vt)
	case "!":
		v, vt, err := g.genExpr(x.X)
		if err != nil {
			return nil, nil, err
		}
		if vt.Kind != CInt {
			return nil, nil, fmt.Errorf("line %d: ! needs int, got %s", x.Line, vt)
		}
		c := g.bld.CreateCmp(ir.OpEq, v, ir.ConstInt(0), "")
		return g.bld.CreateCast(ir.OpZExt, c, ""), TInt, nil
	case "~":
		v, vt, err := g.genExpr(x.X)
		if err != nil {
			return nil, nil, err
		}
		if vt.Kind != CInt {
			return nil, nil, fmt.Errorf("line %d: ~ needs int, got %s", x.Line, vt)
		}
		return g.bld.CreateBinOp(ir.OpXor, v, ir.ConstInt(-1), ""), TInt, nil
	case "*":
		v, vt, err := g.genExpr(x.X)
		if err != nil {
			return nil, nil, err
		}
		if vt.Kind != CPtr {
			return nil, nil, fmt.Errorf("line %d: dereferencing non-pointer %s", x.Line, vt)
		}
		return g.bld.CreateLoad(v, ""), vt.Elem, nil
	case "&":
		addr, et, err := g.genAddr(x.X)
		if err != nil {
			return nil, nil, err
		}
		return addr, cPtr(et), nil
	}
	return nil, nil, fmt.Errorf("line %d: unhandled unary %q", x.Line, x.Op)
}

var intBinOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
}
var fltBinOps = map[string]ir.Op{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
}
var intCmpOps = map[string]ir.Op{
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe, ">": ir.OpGt, ">=": ir.OpGe,
}
var fltCmpOps = map[string]ir.Op{
	"==": ir.OpFEq, "!=": ir.OpFNe, "<": ir.OpFLt, "<=": ir.OpFLe, ">": ir.OpFGt, ">=": ir.OpFGe,
}

func (g *codegen) genBinary(x *Binary) (ir.Value, *CType, error) {
	// Short-circuit logical operators lower to control flow through a
	// stack slot (mem2reg rebuilds the phi).
	if x.Op == "&&" || x.Op == "||" {
		return g.genShortCircuit(x)
	}

	a, at, err := g.genExpr(x.X)
	if err != nil {
		return nil, nil, err
	}
	b, bt, err := g.genExpr(x.Y)
	if err != nil {
		return nil, nil, err
	}

	// Pointer arithmetic: ptr + int, ptr - int.
	if at.Kind == CPtr && bt.Kind == CInt && (x.Op == "+" || x.Op == "-") {
		idx := b
		if x.Op == "-" {
			idx = g.bld.CreateBinOp(ir.OpSub, ir.ConstInt(0), b, "")
		}
		return g.bld.CreatePtrAdd(a, idx, ""), at, nil
	}
	if !at.equal(bt) {
		return nil, nil, fmt.Errorf("line %d: operator %q on %s and %s", x.Line, x.Op, at, bt)
	}
	switch at.Kind {
	case CInt:
		if op, ok := intBinOps[x.Op]; ok {
			return g.bld.CreateBinOp(op, a, b, ""), TInt, nil
		}
		if op, ok := intCmpOps[x.Op]; ok {
			c := g.bld.CreateCmp(op, a, b, "")
			return g.bld.CreateCast(ir.OpZExt, c, ""), TInt, nil
		}
	case CFloat:
		if op, ok := fltBinOps[x.Op]; ok {
			return g.bld.CreateBinOp(op, a, b, ""), TFloat, nil
		}
		if op, ok := fltCmpOps[x.Op]; ok {
			c := g.bld.CreateCmp(op, a, b, "")
			return g.bld.CreateCast(ir.OpZExt, c, ""), TInt, nil
		}
	}
	return nil, nil, fmt.Errorf("line %d: operator %q not defined on %s", x.Line, x.Op, at)
}

func (g *codegen) genShortCircuit(x *Binary) (ir.Value, *CType, error) {
	tmp := g.bld.CreateAlloca(ir.I64Type, 1, "sc.tmp")
	rhsB := g.fn.NewBlock("sc.rhs")
	endB := g.fn.NewBlock("sc.end")
	shortB := g.fn.NewBlock("sc.short")

	ca, err := g.genCond(x.X)
	if err != nil {
		return nil, nil, err
	}
	if x.Op == "&&" {
		g.bld.CreateCondBr(ca, rhsB, shortB)
	} else {
		g.bld.CreateCondBr(ca, shortB, rhsB)
	}

	g.bld.SetInsertionBlock(shortB)
	if x.Op == "&&" {
		g.bld.CreateStore(ir.ConstInt(0), tmp)
	} else {
		g.bld.CreateStore(ir.ConstInt(1), tmp)
	}
	g.bld.CreateBr(endB)

	g.bld.SetInsertionBlock(rhsB)
	cb, err := g.genCond(x.Y)
	if err != nil {
		return nil, nil, err
	}
	z := g.bld.CreateCast(ir.OpZExt, cb, "")
	g.bld.CreateStore(z, tmp)
	g.bld.CreateBr(endB)

	g.bld.SetInsertionBlock(endB)
	return g.bld.CreateLoad(tmp, ""), TInt, nil
}

func (g *codegen) genCall(x *CallExpr) (ir.Value, *CType, error) {
	var callee ir.Value
	var ct *CType

	if id, ok := x.Fn.(*Ident); ok {
		// Local variables shadow function names.
		if li, found := g.lookup(id.Name); found {
			v, vt, err := g.loadVar(li)
			if err != nil {
				return nil, nil, err
			}
			if vt.Kind != CFunc {
				return nil, nil, fmt.Errorf("line %d: calling non-function %q", x.Line, id.Name)
			}
			callee, ct = v, vt
		} else if fi, found := g.funcs[id.Name]; found {
			callee, ct = fi.fn, fi.ctype
		} else {
			return nil, nil, fmt.Errorf("line %d: call to undefined function %q", x.Line, id.Name)
		}
	} else {
		v, vt, err := g.genExpr(x.Fn)
		if err != nil {
			return nil, nil, err
		}
		if vt.Kind != CFunc {
			return nil, nil, fmt.Errorf("line %d: calling non-function value of type %s", x.Line, vt)
		}
		callee, ct = v, vt
	}

	if len(x.Args) != len(ct.Params) {
		return nil, nil, fmt.Errorf("line %d: call has %d args, want %d", x.Line, len(x.Args), len(ct.Params))
	}
	var args []ir.Value
	for i, ae := range x.Args {
		av, at, err := g.genExpr(ae)
		if err != nil {
			return nil, nil, err
		}
		if !at.equal(ct.Params[i]) {
			return nil, nil, fmt.Errorf("line %d: arg %d has type %s, want %s", x.Line, i, at, ct.Params[i])
		}
		args = append(args, av)
	}
	call := g.bld.CreateCall(callee, args, "")
	return call, ct.Ret, nil
}

// genAddr evaluates e as an lvalue, returning the address and element type.
func (g *codegen) genAddr(e Expr) (ir.Value, *CType, error) {
	switch x := e.(type) {
	case *Ident:
		if li, ok := g.lookup(x.Name); ok {
			if li.ctype.Kind == CArray {
				return nil, nil, fmt.Errorf("line %d: array %q is not assignable", x.Line, x.Name)
			}
			return li.addr, li.ctype, nil
		}
		if gi, ok := g.glbls[x.Name]; ok {
			if gi.ctype.Kind == CArray {
				return nil, nil, fmt.Errorf("line %d: array %q is not assignable", x.Line, x.Name)
			}
			return gi.g, gi.ctype, nil
		}
		return nil, nil, fmt.Errorf("line %d: undefined name %q", x.Line, x.Name)

	case *Unary:
		if x.Op != "*" {
			return nil, nil, fmt.Errorf("line %d: %q is not an lvalue", x.Line, x.Op)
		}
		v, vt, err := g.genExpr(x.X)
		if err != nil {
			return nil, nil, err
		}
		if vt.Kind != CPtr {
			return nil, nil, fmt.Errorf("line %d: dereferencing non-pointer %s", x.Line, vt)
		}
		return v, vt.Elem, nil

	case *Index:
		base, bt, err := g.genIndexBase(x.X)
		if err != nil {
			return nil, nil, err
		}
		iv, it, err := g.genExpr(x.I)
		if err != nil {
			return nil, nil, err
		}
		if it.Kind != CInt {
			return nil, nil, fmt.Errorf("line %d: array index must be int", x.Line)
		}
		return g.bld.CreatePtrAdd(base, iv, ""), bt.Elem, nil
	}
	return nil, nil, fmt.Errorf("expression is not an lvalue (%T)", e)
}

// genIndexBase evaluates the base of an indexing expression to a pointer;
// arrays are used in place (their address) rather than decayed via a load.
func (g *codegen) genIndexBase(e Expr) (ir.Value, *CType, error) {
	if id, ok := e.(*Ident); ok {
		if li, found := g.lookup(id.Name); found && li.ctype.Kind == CArray {
			p := g.bld.CreatePtrAdd(li.addr, ir.ConstInt(0), "")
			return p, cPtr(li.ctype.Elem), nil
		}
		if gi, found := g.glbls[id.Name]; found && gi.ctype.Kind == CArray {
			p := g.bld.CreatePtrAdd(gi.g, ir.ConstInt(0), "")
			return p, cPtr(gi.ctype.Elem), nil
		}
	}
	v, vt, err := g.genExpr(e)
	if err != nil {
		return nil, nil, err
	}
	if vt.Kind != CPtr {
		return nil, nil, fmt.Errorf("indexing non-pointer %s", vt)
	}
	return v, vt, nil
}
