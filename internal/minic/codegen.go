package minic

import (
	"fmt"

	"noelle/internal/ir"
)

// Compile parses and lowers a mini-C source file into an IR module. The
// produced module uses allocas for every local (clang -O0 style); callers
// run passes.Mem2Reg to obtain pruned SSA.
func Compile(moduleName, src string) (*ir.Module, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(moduleName, prog)
}

// Lower generates IR from a parsed program.
func Lower(moduleName string, prog *Program) (*ir.Module, error) {
	g := &codegen{
		mod:   ir.NewModule(moduleName),
		funcs: map[string]*funcInfo{},
		glbls: map[string]*globalInfo{},
	}
	if err := g.run(prog); err != nil {
		return nil, err
	}
	if err := ir.Verify(g.mod); err != nil {
		return nil, fmt.Errorf("minic: generated IR is malformed: %w", err)
	}
	return g.mod, nil
}

type funcInfo struct {
	fn    *ir.Function
	ctype *CType // CFunc
}

type globalInfo struct {
	g     *ir.Global
	ctype *CType
}

type localInfo struct {
	addr  ir.Value // alloca (or global pointer) holding the variable
	ctype *CType
}

type codegen struct {
	mod   *ir.Module
	funcs map[string]*funcInfo
	glbls map[string]*globalInfo

	// Per-function state.
	fn     *ir.Function
	bld    *ir.Builder
	scopes []map[string]localInfo
	breaks []*ir.Block
	conts  []*ir.Block
	retC   *CType
}

func irType(t *CType) *ir.Type {
	switch t.Kind {
	case CInt:
		return ir.I64Type
	case CFloat:
		return ir.F64Type
	case CVoid:
		return ir.VoidType
	case CPtr:
		return ir.PointerTo(irType(t.Elem))
	case CArray:
		return ir.ArrayOf(irType(t.Elem), t.Len)
	case CFunc:
		params := make([]*ir.Type, len(t.Params))
		for i, p := range t.Params {
			params[i] = irType(p)
		}
		return ir.FuncOf(irType(t.Ret), params...)
	}
	panic("minic: unhandled type")
}

func (g *codegen) run(prog *Program) error {
	// Pre-declare the standard print externs so every benchmark can use
	// them without boilerplate.
	builtin := []*FuncDecl{
		{Name: "print_i64", Params: []ParamDecl{{Name: "v", Type: TInt}}, Ret: TVoid},
		{Name: "print_f64", Params: []ParamDecl{{Name: "v", Type: TFloat}}, Ret: TVoid},
	}
	for _, fd := range append(builtin, prog.Externs...) {
		if _, dup := g.funcs[fd.Name]; dup {
			continue
		}
		g.declareFunc(fd)
	}
	for _, gd := range prog.Globals {
		if _, dup := g.glbls[gd.Name]; dup {
			return fmt.Errorf("line %d: duplicate global %q", gd.Line, gd.Name)
		}
		irg := &ir.Global{Nam: gd.Name, Elem: irType(gd.Type), Init: gd.Init, FInit: gd.FInit}
		g.mod.AddGlobal(irg)
		g.glbls[gd.Name] = &globalInfo{g: irg, ctype: gd.Type}
	}
	// Declare all functions first so forward references and function
	// pointers work.
	for _, fd := range prog.Funcs {
		if fi, dup := g.funcs[fd.Name]; dup && !fi.fn.IsDeclaration() {
			return fmt.Errorf("line %d: duplicate function %q", fd.Line, fd.Name)
		}
		if _, dup := g.funcs[fd.Name]; !dup {
			g.declareFunc(fd)
		}
	}
	for _, fd := range prog.Funcs {
		if err := g.genFunc(fd); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) declareFunc(fd *FuncDecl) {
	ct := &CType{Kind: CFunc, Ret: fd.Ret}
	var names []string
	for _, p := range fd.Params {
		ct.Params = append(ct.Params, p.Type)
		names = append(names, p.Name)
	}
	fn := ir.NewFunction(fd.Name, irType(ct), names...)
	g.mod.AddFunction(fn)
	g.funcs[fd.Name] = &funcInfo{fn: fn, ctype: ct}
}

func (g *codegen) pushScope() { g.scopes = append(g.scopes, map[string]localInfo{}) }
func (g *codegen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *codegen) lookup(name string) (localInfo, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if li, ok := g.scopes[i][name]; ok {
			return li, true
		}
	}
	return localInfo{}, false
}

func (g *codegen) define(name string, li localInfo) { g.scopes[len(g.scopes)-1][name] = li }

func (g *codegen) genFunc(fd *FuncDecl) error {
	fi := g.funcs[fd.Name]
	g.fn = fi.fn
	g.bld = ir.NewBuilder()
	g.scopes = nil
	g.breaks = nil
	g.conts = nil
	g.retC = fd.Ret

	entry := g.fn.NewBlock("entry")
	g.bld.SetInsertionBlock(entry)
	g.pushScope()
	// Spill parameters to allocas so they are addressable and mutable.
	for i, p := range fd.Params {
		a := g.bld.CreateAlloca(irType(p.Type), 1, p.Name+".addr")
		g.bld.CreateStore(g.fn.Params[i], a)
		g.define(p.Name, localInfo{addr: a, ctype: p.Type})
	}
	if err := g.genBlock(fd.Body); err != nil {
		return err
	}
	g.popScope()
	// Seal every unterminated block with a default return.
	for _, b := range g.fn.Blocks {
		if b.Terminator() == nil {
			g.bld.SetInsertionBlock(b)
			switch fd.Ret.Kind {
			case CVoid:
				g.bld.CreateRet(nil)
			case CFloat:
				g.bld.CreateRet(ir.ConstFloat(0))
			case CInt:
				g.bld.CreateRet(ir.ConstInt(0))
			default:
				return fmt.Errorf("function %q: falls off end with non-scalar return type", fd.Name)
			}
		}
	}
	return nil
}

func (g *codegen) genBlock(blk *BlockStmt) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range blk.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return g.genBlock(st)

	case *DeclStmt:
		n := 1
		elem := st.Type
		if st.Type.Kind == CArray {
			n = st.Type.Len
			elem = st.Type.Elem
		}
		a := g.bld.CreateAlloca(irType(elem), n, st.Name)
		g.define(st.Name, localInfo{addr: a, ctype: st.Type})
		if st.Init != nil {
			v, vt, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			if !vt.equal(st.Type) {
				return fmt.Errorf("line %d: initializing %s with %s", st.Line, st.Type, vt)
			}
			g.bld.CreateStore(v, a)
		}
		return nil

	case *AssignStmt:
		addr, lt, err := g.genAddr(st.LHS)
		if err != nil {
			return err
		}
		v, vt, err := g.genExpr(st.RHS)
		if err != nil {
			return err
		}
		if !vt.equal(lt) {
			return fmt.Errorf("line %d: assigning %s to %s", st.Line, vt, lt)
		}
		g.bld.CreateStore(v, addr)
		return nil

	case *ExprStmt:
		_, _, err := g.genExprAllowVoid(st.X)
		return err

	case *ReturnStmt:
		if st.X == nil {
			if g.retC.Kind != CVoid {
				return fmt.Errorf("line %d: missing return value", st.Line)
			}
			g.bld.CreateRet(nil)
		} else {
			v, vt, err := g.genExpr(st.X)
			if err != nil {
				return err
			}
			if !vt.equal(g.retC) {
				return fmt.Errorf("line %d: returning %s from %s function", st.Line, vt, g.retC)
			}
			g.bld.CreateRet(v)
		}
		g.startDeadBlock("post.ret")
		return nil

	case *BreakStmt:
		if len(g.breaks) == 0 {
			return fmt.Errorf("line %d: break outside loop", st.Line)
		}
		g.bld.CreateBr(g.breaks[len(g.breaks)-1])
		g.startDeadBlock("post.break")
		return nil

	case *ContinueStmt:
		if len(g.conts) == 0 {
			return fmt.Errorf("line %d: continue outside loop", st.Line)
		}
		g.bld.CreateBr(g.conts[len(g.conts)-1])
		g.startDeadBlock("post.continue")
		return nil

	case *IfStmt:
		cond, err := g.genCond(st.Cond)
		if err != nil {
			return err
		}
		thenB := g.fn.NewBlock("if.then")
		exitB := g.fn.NewBlock("if.end")
		elseB := exitB
		if st.Else != nil {
			elseB = g.fn.NewBlock("if.else")
		}
		g.bld.CreateCondBr(cond, thenB, elseB)
		g.bld.SetInsertionBlock(thenB)
		if err := g.genBlock(st.Then); err != nil {
			return err
		}
		if g.bld.Block().Terminator() == nil {
			g.bld.CreateBr(exitB)
		}
		if st.Else != nil {
			g.bld.SetInsertionBlock(elseB)
			if err := g.genBlock(st.Else); err != nil {
				return err
			}
			if g.bld.Block().Terminator() == nil {
				g.bld.CreateBr(exitB)
			}
		}
		g.bld.SetInsertionBlock(exitB)
		return nil

	case *WhileStmt:
		if st.DoWhile {
			return g.genDoWhile(st)
		}
		header := g.fn.NewBlock("while.header")
		body := g.fn.NewBlock("while.body")
		exit := g.fn.NewBlock("while.end")
		g.bld.CreateBr(header)
		g.bld.SetInsertionBlock(header)
		cond, err := g.genCond(st.Cond)
		if err != nil {
			return err
		}
		g.bld.CreateCondBr(cond, body, exit)
		g.bld.SetInsertionBlock(body)
		g.breaks = append(g.breaks, exit)
		g.conts = append(g.conts, header)
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		if g.bld.Block().Terminator() == nil {
			g.bld.CreateBr(header)
		}
		g.bld.SetInsertionBlock(exit)
		return nil

	case *ForStmt:
		if st.Init != nil {
			g.pushScope()
			defer g.popScope()
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		header := g.fn.NewBlock("for.header")
		body := g.fn.NewBlock("for.body")
		postB := g.fn.NewBlock("for.post")
		exit := g.fn.NewBlock("for.end")
		g.bld.CreateBr(header)
		g.bld.SetInsertionBlock(header)
		if st.Cond != nil {
			cond, err := g.genCond(st.Cond)
			if err != nil {
				return err
			}
			g.bld.CreateCondBr(cond, body, exit)
		} else {
			g.bld.CreateBr(body)
		}
		g.bld.SetInsertionBlock(body)
		g.breaks = append(g.breaks, exit)
		g.conts = append(g.conts, postB)
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		if g.bld.Block().Terminator() == nil {
			g.bld.CreateBr(postB)
		}
		g.bld.SetInsertionBlock(postB)
		if st.Post != nil {
			if err := g.genStmt(st.Post); err != nil {
				return err
			}
		}
		g.bld.CreateBr(header)
		g.bld.SetInsertionBlock(exit)
		return nil
	}
	return fmt.Errorf("minic: unhandled statement %T", s)
}

func (g *codegen) genDoWhile(st *WhileStmt) error {
	body := g.fn.NewBlock("do.body")
	condB := g.fn.NewBlock("do.cond")
	exit := g.fn.NewBlock("do.end")
	g.bld.CreateBr(body)
	g.bld.SetInsertionBlock(body)
	g.breaks = append(g.breaks, exit)
	g.conts = append(g.conts, condB)
	if err := g.genBlock(st.Body); err != nil {
		return err
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.conts = g.conts[:len(g.conts)-1]
	if g.bld.Block().Terminator() == nil {
		g.bld.CreateBr(condB)
	}
	g.bld.SetInsertionBlock(condB)
	cond, err := g.genCond(st.Cond)
	if err != nil {
		return err
	}
	g.bld.CreateCondBr(cond, body, exit)
	g.bld.SetInsertionBlock(exit)
	return nil
}

// startDeadBlock begins a fresh block for statements following a
// terminator (code after return/break/continue); it is unreachable and
// cleaned up by CFG simplification.
func (g *codegen) startDeadBlock(label string) {
	b := g.fn.NewBlock(label)
	g.bld.SetInsertionBlock(b)
}

// genCond evaluates an expression as a branch condition (i1). Ints are
// compared against zero, C style.
func (g *codegen) genCond(e Expr) (ir.Value, error) {
	v, vt, err := g.genExpr(e)
	if err != nil {
		return nil, err
	}
	switch vt.Kind {
	case CInt:
		return g.bld.CreateCmp(ir.OpNe, v, ir.ConstInt(0), "tobool"), nil
	case CFloat:
		return g.bld.CreateCmp(ir.OpFNe, v, ir.ConstFloat(0), "tobool"), nil
	case CPtr:
		return nil, fmt.Errorf("pointer conditions are not supported")
	}
	return nil, fmt.Errorf("condition has type %s", vt)
}
