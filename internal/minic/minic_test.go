package minic

import (
	"strings"
	"testing"

	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/irtext"
	"noelle/internal/passes"
)

// runSrc compiles, optionally optimizes, runs, and returns (exit, output).
func runSrc(t *testing.T, src string, optimize bool) (int64, string, *ir.Module) {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if optimize {
		passes.Optimize(m)
		if err := ir.Verify(m); err != nil {
			t.Fatalf("verify after optimize: %v", err)
		}
	}
	it := interp.New(m)
	r, err := it.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, ir.Print(m))
	}
	return r, it.Output.String(), m
}

func TestArithmetic(t *testing.T) {
	src := `
int main() {
  int a = 6;
  int b = 7;
  int c = a * b + 10 / 2 - 3 % 2;
  float f = 1.5;
  float g = f * 4.0;
  return c + (int)g;
}`
	for _, opt := range []bool{false, true} {
		r, _, _ := runSrc(t, src, opt)
		if r != 52 {
			t.Errorf("opt=%v: got %d, want 52", opt, r)
		}
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
  }
  int j = 0;
  while (j < 5) { s = s + 100; j = j + 1; }
  do { s = s + 1000; j = j + 1; } while (j < 8);
  return s;
}`
	// evens 0+2+4+6+8=20, minus 5 odds => 15; +500; +3000 => 3515
	for _, opt := range []bool{false, true} {
		r, _, _ := runSrc(t, src, opt)
		if r != 3515 {
			t.Errorf("opt=%v: got %d, want 3515", opt, r)
		}
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 100; i = i + 1) {
    if (i == 10) { break; }
    if (i % 2 == 1) { continue; }
    s = s + i;
  }
  return s;
}`
	r, _, _ := runSrc(t, src, true)
	if r != 20 {
		t.Errorf("got %d, want 20", r)
	}
}

func TestArraysAndPointers(t *testing.T) {
	src := `
int tab[8];
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) { tab[i] = i * i; }
  int *p = &tab[0];
  int s = 0;
  for (i = 0; i < 8; i = i + 1) { s = s + *(p + i); }
  int local[4];
  local[0] = 5; local[1] = 6; local[2] = 7; local[3] = 8;
  for (i = 0; i < 4; i = i + 1) { s = s + local[i]; }
  return s;
}`
	// sum of squares 0..7 = 140; plus 26 => 166
	for _, opt := range []bool{false, true} {
		r, _, _ := runSrc(t, src, opt)
		if r != 166 {
			t.Errorf("opt=%v: got %d, want 166", opt, r)
		}
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int weights[4] = {10, 20, 30, 40};
float scale = 2.5;
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 4; i = i + 1) { s = s + weights[i]; }
  return s + (int)(scale * 4.0);
}`
	r, _, _ := runSrc(t, src, true)
	if r != 110 {
		t.Errorf("got %d, want 110", r)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`
	r, _, _ := runSrc(t, src, true)
	if r != 144 {
		t.Errorf("fib(12) = %d, want 144", r)
	}
}

func TestFunctionPointers(t *testing.T) {
	src := `
int dbl(int x) { return x * 2; }
int sqr(int x) { return x * x; }
int apply(func(int) int f, int v) { return f(v); }
int main() {
  func(int) int op = dbl;
  int a = apply(op, 10);
  op = sqr;
  int b = apply(op, 10);
  return a + b;
}`
	for _, opt := range []bool{false, true} {
		r, _, _ := runSrc(t, src, opt)
		if r != 120 {
			t.Errorf("opt=%v: got %d, want 120", opt, r)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
  int a = 0 && bump();
  int b = 1 || bump();
  int c = 1 && bump();
  int d = 0 || bump();
  return g * 100 + a + b * 10 + c * 100 + d * 1000;
}`
	// bump runs twice (c, d): g=2. a=0,b=1,c=1,d=1 => 200+0+10+100+1000=1310
	for _, opt := range []bool{false, true} {
		r, _, _ := runSrc(t, src, opt)
		if r != 1310 {
			t.Errorf("opt=%v: got %d, want 1310", opt, r)
		}
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
int main() {
  print_i64(42);
  print_f64(2.5);
  return 0;
}`
	_, out, _ := runSrc(t, src, true)
	if out != "42\n2.5\n" {
		t.Errorf("output = %q", out)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	src := `
int data[32];
int hash(int x) { return (x * 31 + 7) % 97; }
int main() {
  int i;
  for (i = 0; i < 32; i = i + 1) { data[i] = hash(i); }
  int best = 0;
  for (i = 0; i < 32; i = i + 1) {
    if (data[i] > best) { best = data[i]; }
  }
  print_i64(best);
  return best;
}`
	r0, o0, _ := runSrc(t, src, false)
	r1, o1, _ := runSrc(t, src, true)
	if r0 != r1 || o0 != o1 {
		t.Errorf("optimization changed semantics: (%d,%q) vs (%d,%q)", r0, o0, r1, o1)
	}
}

func TestMem2RegPromotes(t *testing.T) {
	src := `
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) { s = s + i; }
  return s;
}`
	_, _, m := runSrc(t, src, true)
	main := m.FunctionByName("main")
	allocas, phis := 0, 0
	main.Instrs(func(in *ir.Instr) bool {
		switch in.Opcode {
		case ir.OpAlloca:
			allocas++
		case ir.OpPhi:
			phis++
		}
		return true
	})
	if allocas != 0 {
		t.Errorf("allocas remain after mem2reg: %d\n%s", allocas, ir.Print(m))
	}
	if phis == 0 {
		t.Error("expected phis after mem2reg")
	}
}

func TestCompiledModuleRoundTrips(t *testing.T) {
	src := `
int tab[4] = {1, 2, 3, 4};
int sum(int *p, int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + p[i]; }
  return s;
}
int main() { return sum(&tab[0], 4); }`
	m, err := Compile("rt", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Optimize(m)
	text := ir.Print(m)
	m2, err := irtext.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	it := interp.New(m2)
	r, err := it.Run()
	if err != nil {
		t.Fatalf("run reparsed: %v", err)
	}
	if r != 10 {
		t.Errorf("reparsed result = %d, want 10", r)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"mixed arith", `int main() { int a = 1; float b = 2.0; return a + b; }`},
		{"bad call arity", `int f(int x) { return x; } int main() { return f(1, 2); }`},
		{"undefined var", `int main() { return nope; }`},
		{"undefined func", `int main() { return nope(); }`},
		{"void in expr", `int main() { int x = print_i64(3); return x; }`},
		{"assign to array", `int a[3]; int main() { a = 4; return 0; }`},
		{"break outside loop", `int main() { break; return 0; }`},
	}
	for _, c := range cases {
		if _, err := Compile("bad", c.src); err == nil {
			t.Errorf("%s: expected compile error", c.name)
		}
	}
}

func TestParseErrorsHaveLineNumbers(t *testing.T) {
	_, err := Compile("bad", "int main() {\n  int x = ;\n}")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error = %v, want line 2 mention", err)
	}
}
