package minic

import (
	"fmt"
	"strconv"
)

// Parse parses a mini-C translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks}
	return p.parseProgram()
}

type cparser struct {
	toks []Tok
	pos  int
}

func (p *cparser) peek() Tok        { return p.toks[p.pos] }
func (p *cparser) peekAt(n int) Tok { return p.toks[min(p.pos+n, len(p.toks)-1)] }
func (p *cparser) next() Tok        { t := p.toks[p.pos]; p.pos++; return t }

func (p *cparser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.peek().Line, fmt.Sprintf(format, args...))
}

func (p *cparser) expect(text string) error {
	t := p.next()
	if t.Text != text {
		return fmt.Errorf("line %d: expected %q, got %q", t.Line, text, t.Text)
	}
	return nil
}

func (p *cparser) accept(text string) bool {
	if p.peek().Text == text && p.peek().Kind != TokEOF {
		p.pos++
		return true
	}
	return false
}

func (p *cparser) atType() bool {
	t := p.peek()
	return t.Kind == TokKeyword && (t.Text == "int" || t.Text == "float" || t.Text == "void" || t.Text == "func")
}

// parseType parses: ("int"|"float"|"void"|funcType) "*"*
func (p *cparser) parseType() (*CType, error) {
	t := p.next()
	var base *CType
	switch t.Text {
	case "int":
		base = TInt
	case "float":
		base = TFloat
	case "void":
		base = TVoid
	case "func":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ft := &CType{Kind: CFunc}
		for !p.accept(")") {
			if len(ft.Params) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, pt)
		}
		ret, err := p.parseType()
		if err != nil {
			return nil, err
		}
		ft.Ret = ret
		base = ft
	default:
		return nil, fmt.Errorf("line %d: expected type, got %q", t.Line, t.Text)
	}
	for p.accept("*") {
		base = cPtr(base)
	}
	return base, nil
}

func (p *cparser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.peek().Kind != TokEOF {
		if p.accept("extern") {
			fd, err := p.parseFuncHeader()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.Externs = append(prog.Externs, fd)
			continue
		}
		if !p.atType() {
			return nil, p.errf("expected declaration, got %q", p.peek().Text)
		}
		// Function or global: type ident then '(' means function.
		save := p.pos
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.next()
		if nameTok.Kind != TokIdent {
			return nil, fmt.Errorf("line %d: expected name, got %q", nameTok.Line, nameTok.Text)
		}
		if p.peek().Text == "(" {
			p.pos = save
			fd, err := p.parseFuncHeader()
			if err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			fd.Body = body
			prog.Funcs = append(prog.Funcs, fd)
			continue
		}
		g, err := p.parseGlobalRest(ty, nameTok)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *cparser) parseFuncHeader() (*FuncDecl, error) {
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.Kind != TokIdent {
		return nil, fmt.Errorf("line %d: expected function name", nameTok.Line)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: nameTok.Text, Ret: ret, Line: nameTok.Line}
	for !p.accept(")") {
		if len(fd.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn := p.next()
		if pn.Kind != TokIdent {
			return nil, fmt.Errorf("line %d: expected parameter name", pn.Line)
		}
		fd.Params = append(fd.Params, ParamDecl{Name: pn.Text, Type: pt})
	}
	return fd, nil
}

func (p *cparser) parseGlobalRest(ty *CType, nameTok Tok) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: nameTok.Text, Type: ty, Line: nameTok.Line}
	if p.accept("[") {
		szTok := p.next()
		if szTok.Kind != TokInt {
			return nil, fmt.Errorf("line %d: expected array size", szTok.Line)
		}
		n, _ := strconv.Atoi(szTok.Text)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		g.Type = cArray(ty, n)
	}
	if p.accept("=") {
		isFloat := scalarOf(g.Type).Kind == CFloat
		parseLit := func() error {
			neg := p.accept("-")
			t := p.next()
			switch {
			case isFloat && (t.Kind == TokFloat || t.Kind == TokInt):
				v, err := strconv.ParseFloat(t.Text, 64)
				if err != nil {
					return err
				}
				if neg {
					v = -v
				}
				g.FInit = append(g.FInit, v)
			case !isFloat && t.Kind == TokInt:
				v, err := strconv.ParseInt(t.Text, 10, 64)
				if err != nil {
					return err
				}
				if neg {
					v = -v
				}
				g.Init = append(g.Init, v)
			default:
				return fmt.Errorf("line %d: bad initializer %q", t.Line, t.Text)
			}
			return nil
		}
		if p.accept("{") {
			for !p.accept("}") {
				if len(g.Init)+len(g.FInit) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				if err := parseLit(); err != nil {
					return nil, err
				}
			}
		} else if err := parseLit(); err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return g, nil
}

func scalarOf(t *CType) *CType {
	for t.Kind == CArray || t.Kind == CPtr {
		t = t.Elem
	}
	return t
}

func (p *cparser) parseBlock() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for !p.accept("}") {
		if p.peek().Kind == TokEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *cparser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Text == "{":
		return p.parseBlock()
	case t.Text == "if":
		return p.parseIf()
	case t.Text == "while":
		return p.parseWhile()
	case t.Text == "do":
		return p.parseDoWhile()
	case t.Text == "for":
		return p.parseFor()
	case t.Text == "return":
		p.next()
		rs := &ReturnStmt{Line: t.Line}
		if !p.accept(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return rs, nil
	case t.Text == "break":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case t.Text == "continue":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	case p.atType():
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return d, nil
	default:
		s, err := p.parseExprOrAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *cparser) parseDecl() (Stmt, error) {
	line := p.peek().Line
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.Kind != TokIdent {
		return nil, fmt.Errorf("line %d: expected variable name", nameTok.Line)
	}
	if p.accept("[") {
		szTok := p.next()
		if szTok.Kind != TokInt {
			return nil, fmt.Errorf("line %d: expected array size", szTok.Line)
		}
		n, _ := strconv.Atoi(szTok.Text)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		ty = cArray(ty, n)
	}
	d := &DeclStmt{Name: nameTok.Text, Type: ty, Line: line}
	if p.accept("=") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = x
	}
	return d, nil
}

func (p *cparser) parseExprOrAssign() (Stmt, error) {
	line := p.peek().Line
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, Line: line}, nil
	}
	return &ExprStmt{X: lhs, Line: line}, nil
}

func (p *cparser) parseIf() (Stmt, error) {
	line := p.next().Line // "if"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Cond: cond, Then: then, Line: line}
	if p.accept("else") {
		if p.peek().Text == "if" {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = &BlockStmt{Stmts: []Stmt{elif}}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			is.Else = els
		}
	}
	return is, nil
}

func (p *cparser) parseWhile() (Stmt, error) {
	line := p.next().Line // "while"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
}

func (p *cparser) parseDoWhile() (Stmt, error) {
	line := p.next().Line // "do"
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expect("while"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, DoWhile: true, Line: line}, nil
}

func (p *cparser) parseFor() (Stmt, error) {
	line := p.next().Line // "for"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{Line: line}
	if !p.accept(";") {
		var err error
		if p.atType() {
			fs.Init, err = p.parseDecl()
		} else {
			fs.Init, err = p.parseExprOrAssign()
		}
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if p.peek().Text != ")" {
		post, err := p.parseExprOrAssign()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// Binary operator precedence, lowest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *cparser) parseExpr() (Expr, error) { return p.parseBinary(0) }

func (p *cparser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		matched := false
		for _, op := range precLevels[level] {
			if t.Kind == TokPunct && t.Text == op {
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs, Line: t.Line}
	}
}

func (p *cparser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Text {
	case "-", "!", "*", "&", "~":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x, Line: t.Line}, nil
	}
	// Cast: '(' (int|float) ')' unary  — only scalar casts.
	if t.Text == "(" && p.peekAt(1).Kind == TokKeyword &&
		(p.peekAt(1).Text == "int" || p.peekAt(1).Text == "float") && p.peekAt(2).Text == ")" {
		p.next()
		toTok := p.next()
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		to := TInt
		if toTok.Text == "float" {
			to = TFloat
		}
		return &Cast{To: to, X: x, Line: t.Line}, nil
	}
	return p.parsePostfix()
}

func (p *cparser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Text {
		case "(":
			p.next()
			call := &CallExpr{Fn: x, Line: t.Line}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			x = call
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: idx, Line: t.Line}
		default:
			return x, nil
		}
	}
}

func (p *cparser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokInt:
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, err
		}
		return &IntLit{Val: v, Line: t.Line}, nil
	case TokFloat:
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, err
		}
		return &FloatLit{Val: v, Line: t.Line}, nil
	case TokIdent:
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case TokPunct:
		if t.Text == "(" {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("line %d: expected expression, got %q", t.Line, t.Text)
}
