package abscache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"noelle/internal/ir"
	"noelle/internal/pdg"
)

// Stats counts one session's store traffic. A hit is a record that
// decoded into a valid graph; everything else (absent, corrupt, stale
// shape) is a miss, and the caller rebuilds. The JSON tags are the wire
// codec shared by `noelle-cache stats -json` and the noelle-serve stats
// endpoint — one layout, two surfaces.
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

// IndexEntry is one line of a module's index file: the latest
// fingerprint stored for a function name, plus display counts for
// noelle-cache ls.
type IndexEntry struct {
	Name        string
	Fingerprint string
	Instrs      int
	Edges       int
	Loops       int
}

// parseIndex decodes an index file; malformed lines are skipped (the
// index is rebuilt by Puts, never trusted blindly).
func parseIndex(data []byte) []IndexEntry {
	var out []IndexEntry
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			continue
		}
		instrs, _ := strconv.Atoi(fields[2])
		edges, _ := strconv.Atoi(fields[3])
		loops, _ := strconv.Atoi(fields[4])
		out = append(out, IndexEntry{
			Name: fields[0], Fingerprint: fields[1],
			Instrs: instrs, Edges: edges, Loops: loops,
		})
	}
	return out
}

// Store is a two-tier persistent abstraction store: an in-memory LRU of
// decoded records in front of one on-disk directory per module key.
// Records are immutable once written except for loop-summary enrichment,
// and every file commit is write-temp-then-rename, so a crash leaves
// either the old record or the new one — never a torn read. Safe for
// concurrent use.
type Store struct {
	mu     sync.Mutex
	root   string
	modKey string
	modDir string

	lru        *lruCache
	index      map[string]IndexEntry
	indexDirty bool
	dirty      map[ir.Fingerprint]bool // records with unwritten loop summaries
	stats      Stats
	closed     bool
}

// DefaultLRUEntries is the in-memory tier's default capacity.
const DefaultLRUEntries = 4096

// ModuleKey derives the store subdirectory for a module. It hashes the
// module name only: correctness lives entirely in the per-function
// fingerprints (which cover bodies, callees and globals), so the module
// key is a namespace that lets unchanged functions stay warm across
// transforming runs of the same program.
func ModuleKey(m *ir.Module) string {
	sum := sha256.Sum256([]byte("noelle.mod.v1\x00" + m.Name))
	return hex.EncodeToString(sum[:8])
}

// Open opens (creating if needed) the store rooted at root for module m.
// lruEntries <= 0 selects DefaultLRUEntries.
func Open(root string, m *ir.Module, lruEntries int) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("abscache: empty store directory")
	}
	if lruEntries <= 0 {
		lruEntries = DefaultLRUEntries
	}
	key := ModuleKey(m)
	modDir := filepath.Join(root, key)
	if err := os.MkdirAll(modDir, 0o755); err != nil {
		return nil, fmt.Errorf("abscache: %w", err)
	}
	s := &Store{
		root:   root,
		modKey: key,
		modDir: modDir,
		lru:    newLRU(lruEntries),
		index:  map[string]IndexEntry{},
		dirty:  map[ir.Fingerprint]bool{},
	}
	s.loadIndex()
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// ModKey returns the module subdirectory key.
func (s *Store) ModKey() string { return s.modKey }

// Get looks up the record for fp and reconstructs f's PDG from it. Any
// failure — absent record, corrupt bytes, shape mismatch — is a miss.
// The disk read, decode, and graph assembly run outside the store lock
// so concurrent warm loads (PrecomputePDGs workers) proceed in parallel;
// two goroutines racing the same cold fingerprint at worst decode the
// record twice.
func (s *Store) Get(fp ir.Fingerprint, f *ir.Function) (*pdg.Graph, *Record, bool) {
	s.mu.Lock()
	rec, cached := s.lru.get(fp)
	s.mu.Unlock()
	if !cached {
		var err error
		rec, err = s.readRecord(fp)
		if err != nil {
			s.miss()
			return nil, nil, false
		}
	}
	g, err := rec.BuildGraph(f)
	if err != nil {
		s.miss()
		return nil, nil, false
	}
	s.mu.Lock()
	if !cached {
		s.admitLocked(fp, rec)
	}
	s.stats.Hits++
	s.mu.Unlock()
	return g, rec, true
}

// admitLocked inserts rec into the memory tier, writing back any evicted
// record that still carries unflushed loop-summary enrichment — without
// this, concurrent sessions thrashing the LRU (the daemon's steady
// state) would silently drop summaries that were only resident in the
// evicted copy. The write is best effort: an error only costs warmth,
// never correctness. Caller holds mu.
func (s *Store) admitLocked(fp ir.Fingerprint, rec *Record) {
	for _, ev := range s.lru.put(fp, rec) {
		if s.dirty[ev.fp] {
			delete(s.dirty, ev.fp)
			s.writeRecord(ev.rec)
		}
	}
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put commits rec to disk (write-temp-then-rename) and the LRU, and
// points the function-name index at it.
func (s *Store) Put(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	s.admitLocked(rec.Fingerprint, rec)
	if err := s.writeRecord(rec); err != nil {
		return err
	}
	s.index[rec.FuncName] = IndexEntry{
		Name:        rec.FuncName,
		Fingerprint: rec.Fingerprint.String(),
		Instrs:      rec.NumInstrs,
		Edges:       len(rec.Edges),
		Loops:       len(rec.Loops),
	}
	s.indexDirty = true
	return nil
}

// AddLoopSummary enriches the record for fp with one loop's abstraction
// summary (replacing any previous summary for the same header). A no-op
// when no record exists for fp; the summary is persisted on Flush/Close.
func (s *Store) AddLoopSummary(fp ir.Fingerprint, sum LoopSummary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.lru.get(fp)
	if !ok {
		var err error
		if rec, err = s.readRecord(fp); err != nil {
			return
		}
		s.admitLocked(fp, rec)
	}
	for i, l := range rec.Loops {
		if l.Header == sum.Header {
			if l != sum {
				rec.Loops[i] = sum
				s.dirty[fp] = true
			}
			return
		}
	}
	rec.Loops = append(rec.Loops, sum)
	sort.Slice(rec.Loops, func(i, j int) bool { return rec.Loops[i].Header < rec.Loops[j].Header })
	s.dirty[fp] = true
	if e, ok := s.index[rec.FuncName]; ok && e.Fingerprint == fp.String() {
		e.Loops = len(rec.Loops)
		s.index[rec.FuncName] = e
		s.indexDirty = true
	}
}

// Stats returns a snapshot of this session's counters: a by-value copy
// taken under the store lock, safe to poll concurrently with live
// traffic (the noelle-serve stats endpoint does, on every request).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flush persists pending loop-summary updates and the index. It does not
// write the session counters; Close does.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	for fp := range s.dirty {
		rec, ok := s.lru.get(fp)
		if !ok {
			continue // unreachable: eviction writes dirty records back and clears the mark
		}
		if err := s.writeRecord(rec); err != nil {
			return err
		}
	}
	s.dirty = map[ir.Fingerprint]bool{}
	if s.indexDirty {
		if err := s.writeIndex(); err != nil {
			return err
		}
		s.indexDirty = false
	}
	return nil
}

// Close flushes and folds this session's counters into the root stats
// file (total.* accumulate forever; last.* describe the final session),
// which is what noelle-cache stats surfaces. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.flushLocked(); err != nil {
		return err
	}
	return writeStatsFile(s.root, s.stats)
}

// ---- on-disk plumbing ----

func (s *Store) recordPath(fp ir.Fingerprint) string {
	return filepath.Join(s.modDir, fp.String()+".rec")
}

func (s *Store) readRecord(fp ir.Fingerprint) (*Record, error) {
	data, err := os.ReadFile(s.recordPath(fp))
	if err != nil {
		return nil, err
	}
	rec, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if rec.Fingerprint != fp {
		return nil, fmt.Errorf("abscache: record %s holds fingerprint %s", fp.Short(), rec.Fingerprint.Short())
	}
	return rec, nil
}

func (s *Store) writeRecord(rec *Record) error {
	return commitFile(s.recordPath(rec.Fingerprint), Encode(rec))
}

const indexName = "index"

func (s *Store) loadIndex() {
	data, err := os.ReadFile(filepath.Join(s.modDir, indexName))
	if err != nil {
		return // absent or unreadable: rebuilt lazily by Puts
	}
	for _, e := range parseIndex(data) {
		s.index[e.Name] = e
	}
}

func (s *Store) writeIndex() error {
	names := make([]string, 0, len(s.index))
	for n := range s.index {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		e := s.index[n]
		fmt.Fprintf(&b, "%s\t%s\t%d\t%d\t%d\n", n, e.Fingerprint, e.Instrs, e.Edges, e.Loops)
	}
	return commitFile(filepath.Join(s.modDir, indexName), []byte(b.String()))
}

// commitFile writes data crash-safely: to a temp file in the same
// directory, fsync-free but atomically renamed into place.
func commitFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("abscache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("abscache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("abscache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("abscache: %w", err)
	}
	return nil
}

const statsName = "stats"

// writeStatsFile folds a session's counters into root/stats.
func writeStatsFile(root string, session Stats) error {
	totals, _ := ReadStatsFile(root)
	totals["total.hits"] += session.Hits
	totals["total.misses"] += session.Misses
	totals["total.puts"] += session.Puts
	totals["total.sessions"]++
	totals["last.hits"] = session.Hits
	totals["last.misses"] = session.Misses
	totals["last.puts"] = session.Puts
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, totals[k])
	}
	return commitFile(filepath.Join(root, statsName), []byte(b.String()))
}

// ReadStatsFile parses root/stats into counter values. A missing file
// reads as all-zero counters.
func ReadStatsFile(root string) (map[string]int64, error) {
	out := map[string]int64{}
	data, err := os.ReadFile(filepath.Join(root, statsName))
	if err != nil {
		return out, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			continue
		}
		out[k] = n
	}
	return out, nil
}
