package abscache_test

import (
	"testing"

	"noelle/internal/abscache"
)

// TestDirtyEvictionWritesBack: a record enriched with loop summaries
// (dirty in the in-memory tier) must not lose them when LRU pressure
// evicts it before the next flush — the compile-service deployment hits
// this routinely, with many concurrent sessions sharing one store.
func TestDirtyEvictionWritesBack(t *testing.T) {
	m := compile(t)
	root := t.TempDir()
	st, err := abscache.Open(root, m, 1) // one-slot memory tier
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	_, _, recStep := buildRecord(t, m, "step")
	if err := st.Put(recStep); err != nil {
		t.Fatalf("put: %v", err)
	}
	sum := abscache.LoopSummary{Header: 1, Depth: 1, NumInstrs: 9, IVs: 1, HasGovIV: true}
	st.AddLoopSummary(recStep.Fingerprint, sum)

	// Admitting a second record evicts the dirty first one.
	_, _, recMain := buildRecord(t, m, "main")
	if err := st.Put(recMain); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	rec, _, err := abscache.FindRecord(root, "step")
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	found := false
	for _, l := range rec.Loops {
		if l == sum {
			found = true
		}
	}
	if !found {
		t.Errorf("loop summary lost across dirty eviction: on-disk loops = %+v", rec.Loops)
	}
}
