package abscache

// RootStats is the snapshot of a whole store root — the on-disk totals
// ScanRoot derives plus the persisted session counters — in the JSON
// layout shared by `noelle-cache stats -json` and the noelle-serve stats
// endpoint. One codec, two surfaces: a dashboard scraping the daemon and
// a script parsing the CLI read the same fields.
type RootStats struct {
	Root     string           `json:"root"`
	Modules  int              `json:"modules"`
	Records  int              `json:"records"`
	Indexed  int              `json:"indexed"`
	Bytes    int64            `json:"bytes"`
	Counters map[string]int64 `json:"counters"`
}

// CollectRootStats scans root and folds in the persisted counters. A
// missing or empty root collects as all-zero (with non-nil Counters), so
// pollers never need a special first-run path.
func CollectRootStats(root string) (*RootStats, error) {
	mods, err := ScanRoot(root)
	if err != nil {
		return nil, err
	}
	rs := &RootStats{Root: root, Modules: len(mods)}
	for _, mi := range mods {
		rs.Records += mi.Records
		rs.Bytes += mi.Bytes
		rs.Indexed += len(mi.Entries)
	}
	rs.Counters, _ = ReadStatsFile(root) // absent file reads as zero counters
	return rs, nil
}
