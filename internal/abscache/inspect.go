package abscache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the inspection surface behind cmd/noelle-cache — the
// abscache analogue of rockyardkv's ldb/sstdump: offline tooling that
// walks the on-disk layout without needing the module the records were
// built from.

// ModuleInfo describes one module directory of a store root.
type ModuleInfo struct {
	Key     string
	Dir     string
	Records int
	Bytes   int64
	Entries []IndexEntry
}

// ScanRoot walks every module directory under root, counting record
// files and reading each index. A root that does not exist scans empty.
func ScanRoot(root string) ([]ModuleInfo, error) {
	dirs, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("abscache: %w", err)
	}
	var out []ModuleInfo
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		mi := ModuleInfo{Key: d.Name(), Dir: filepath.Join(root, d.Name())}
		files, err := os.ReadDir(mi.Dir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if !strings.HasSuffix(f.Name(), ".rec") {
				continue
			}
			mi.Records++
			if info, err := f.Info(); err == nil {
				mi.Bytes += info.Size()
			}
		}
		mi.Entries = readIndexEntries(mi.Dir)
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func readIndexEntries(dir string) []IndexEntry {
	data, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		return nil
	}
	return parseIndex(data)
}

// FindRecord locates and decodes the newest record stored under fnName in
// any module directory of the root (noelle-cache dump).
func FindRecord(root, fnName string) (*Record, string, error) {
	mods, err := ScanRoot(root)
	if err != nil {
		return nil, "", err
	}
	for _, mi := range mods {
		for _, e := range mi.Entries {
			if e.Name != fnName {
				continue
			}
			data, err := os.ReadFile(filepath.Join(mi.Dir, e.Fingerprint+".rec"))
			if err != nil {
				return nil, "", fmt.Errorf("abscache: record for @%s: %w", fnName, err)
			}
			rec, err := Decode(data)
			if err != nil {
				return nil, "", fmt.Errorf("abscache: record for @%s: %w", fnName, err)
			}
			return rec, mi.Key, nil
		}
	}
	return nil, "", fmt.Errorf("abscache: no record for @%s under %s", fnName, root)
}

// GCResult reports what a garbage-collection pass removed.
type GCResult struct {
	Corrupt  int // records that failed to decode (bad magic/version/crc)
	Orphaned int // records no index entry references
	Temp     int // leftover .tmp-* files from interrupted commits
}

// GC sweeps every module directory: corrupt records, records orphaned by
// re-fingerprinting (the old record of a since-transformed function), and
// leftover temp files are deleted. Indexed, decodable records survive.
func GC(root string) (GCResult, error) {
	var res GCResult
	mods, err := ScanRoot(root)
	if err != nil {
		return res, err
	}
	for _, mi := range mods {
		referenced := map[string]bool{}
		for _, e := range mi.Entries {
			referenced[e.Fingerprint] = true
		}
		files, err := os.ReadDir(mi.Dir)
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			path := filepath.Join(mi.Dir, name)
			if strings.HasPrefix(name, ".tmp-") {
				if os.Remove(path) == nil {
					res.Temp++
				}
				continue
			}
			if !strings.HasSuffix(name, ".rec") {
				continue
			}
			fp := strings.TrimSuffix(name, ".rec")
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			if _, derr := Decode(data); derr != nil {
				if os.Remove(path) == nil {
					res.Corrupt++
				}
				continue
			}
			if !referenced[fp] {
				if os.Remove(path) == nil {
					res.Orphaned++
				}
			}
		}
	}
	return res, nil
}

// Clear removes every module directory and the stats file under root,
// leaving the root directory itself in place.
func Clear(root string) error {
	dirs, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("abscache: %w", err)
	}
	for _, d := range dirs {
		path := filepath.Join(root, d.Name())
		if d.IsDir() {
			if err := os.RemoveAll(path); err != nil {
				return fmt.Errorf("abscache: %w", err)
			}
		} else if d.Name() == statsName {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("abscache: %w", err)
			}
		}
	}
	return nil
}
