package abscache_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"noelle/internal/abscache"
	"noelle/internal/ir"
	"noelle/internal/irtext"
	"noelle/internal/minic"
	"noelle/internal/passes"
	"noelle/internal/pdg"
)

const testSrc = `
int grid[64];

int step(int k) {
  int acc = 0;
  for (int i = 0; i < 64; i = i + 1) {
    grid[i] = grid[i] + k;
    acc = acc + grid[i];
  }
  return acc;
}

int main() {
  int total = 0;
  for (int r = 0; r < 8; r = r + 1) {
    total = total + step(r);
  }
  print_i64(total);
  return 0;
}
`

func compile(t *testing.T) *ir.Module {
	t.Helper()
	m, err := minic.Compile("abscache_test", testSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Optimize(m)
	return m
}

func buildRecord(t *testing.T, m *ir.Module, name string) (*ir.Function, *pdg.Graph, *abscache.Record) {
	t.Helper()
	f := m.FunctionByName(name)
	if f == nil {
		t.Fatalf("no function @%s", name)
	}
	g := pdg.NewBuilder(m).FunctionPDG(f)
	fp := ir.NewFingerprinter(m).Function(f)
	return f, g, abscache.NewRecord(fp, f, g)
}

// graphShape renders a graph as a set of positional edge strings so two
// graphs over different instruction pointers can be compared.
func graphShape(f *ir.Function, g *pdg.Graph) map[string]int {
	pos := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) bool {
		pos[in] = len(pos)
		return true
	})
	out := map[string]int{}
	g.Edges(func(e *pdg.Edge) bool {
		out[edgeKey(pos[e.From], pos[e.To], pdg.EncodeEdgeFlags(e))]++
		return true
	})
	return out
}

func edgeKey(from, to int, flags string) string {
	return fmt.Sprintf("%d:%d:%s", from, to, flags)
}

func sameShape(t *testing.T, f *ir.Function, want, got *pdg.Graph) {
	t.Helper()
	ws, gs := graphShape(f, want), graphShape(f, got)
	if len(ws) != len(gs) {
		t.Fatalf("@%s: %d distinct edges, want %d", f.Nam, len(gs), len(ws))
	}
	for k, n := range ws {
		if gs[k] != n {
			t.Fatalf("@%s: edge %s count %d, want %d", f.Nam, k, gs[k], n)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := compile(t)
	f, g, rec := buildRecord(t, m, "step")
	rec.Loops = append(rec.Loops, abscache.LoopSummary{
		Header: 1, Depth: 1, NumInstrs: 12, DoWhile: true, IVs: 1, HasGovIV: true, Invariants: 3, Reductions: 1,
	})

	back, err := abscache.Decode(abscache.Encode(rec))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Fingerprint != rec.Fingerprint || back.FuncName != rec.FuncName || back.NumInstrs != rec.NumInstrs {
		t.Fatalf("header mismatch: %+v vs %+v", back, rec)
	}
	if len(back.Edges) != len(rec.Edges) || len(back.Loops) != 1 || back.Loops[0] != rec.Loops[0] {
		t.Fatalf("payload mismatch")
	}
	rebuilt, err := back.BuildGraph(f)
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	if rebuilt.NumEdges() != g.NumEdges() || rebuilt.NumNodes() != g.NumNodes() {
		t.Fatalf("rebuilt %d nodes/%d edges, want %d/%d",
			rebuilt.NumNodes(), rebuilt.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	sameShape(t, f, g, rebuilt)
}

func TestDecodeRejectsCorruption(t *testing.T) {
	m := compile(t)
	_, _, rec := buildRecord(t, m, "step")
	data := abscache.Encode(rec)

	// Flip one payload byte: the checksum must catch it.
	for _, i := range []int{7, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := abscache.Decode(bad); err == nil {
			t.Errorf("decode accepted corruption at byte %d", i)
		}
	}
	if _, err := abscache.Decode(data[:len(data)-3]); err == nil {
		t.Error("decode accepted truncated record")
	}
	if _, err := abscache.Decode(nil); err == nil {
		t.Error("decode accepted empty record")
	}
}

func TestStoreWarmAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	m1 := compile(t)

	// Session 1 (cold): build, put, close.
	s1, err := abscache.Open(dir, m1, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f1, g1, rec := buildRecord(t, m1, "step")
	if _, _, ok := s1.Get(rec.Fingerprint, f1); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s1.Put(rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := s1.Stats()
	if st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("session 1 stats = %+v", st)
	}

	// Session 2 simulates a new process: a fresh module parse (new
	// pointers) and a fresh store over the same directory.
	m2 := compile(t)
	f2 := m2.FunctionByName("step")
	fp2 := ir.NewFingerprinter(m2).Function(f2)
	if fp2 != rec.Fingerprint {
		t.Fatalf("recompiled fingerprint drifted: %s vs %s", fp2.Short(), rec.Fingerprint.Short())
	}
	s2, err := abscache.Open(dir, m2, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	g2, _, ok := s2.Get(fp2, f2)
	if !ok {
		t.Fatal("warm session missed")
	}
	sameShape(t, f1, g1, mustRemap(t, f1, f2, g2))
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	counters, err := abscache.ReadStatsFile(dir)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if counters["total.hits"] != 1 || counters["total.misses"] != 1 || counters["last.misses"] != 0 || counters["last.hits"] != 1 {
		t.Fatalf("persisted counters = %v", counters)
	}
}

// mustRemap re-expresses g (over f2's instructions) as a graph over f1's
// so shapes can be compared: both functions are the same program text.
func mustRemap(t *testing.T, f1, f2 *ir.Function, g *pdg.Graph) *pdg.Graph {
	t.Helper()
	var i1 []*ir.Instr
	f1.Instrs(func(in *ir.Instr) bool { i1 = append(i1, in); return true })
	pos2 := map[*ir.Instr]int{}
	f2.Instrs(func(in *ir.Instr) bool { pos2[in] = len(pos2); return true })
	if len(i1) != len(pos2) {
		t.Fatal("function shapes differ")
	}
	out := pdg.NewGraph()
	for _, in := range i1 {
		out.AddInternal(in)
	}
	g.Edges(func(e *pdg.Edge) bool {
		ne := &pdg.Edge{From: i1[pos2[e.From]], To: i1[pos2[e.To]]}
		if err := pdg.DecodeEdgeFlags(ne, pdg.EncodeEdgeFlags(e)); err != nil {
			t.Fatalf("flags: %v", err)
		}
		out.AddEdge(ne)
		return true
	})
	return out
}

func TestStoreDegradesOnCorruptedRecord(t *testing.T) {
	dir := t.TempDir()
	m := compile(t)
	s, err := abscache.Open(dir, m, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f, _, rec := buildRecord(t, m, "step")
	if err := s.Put(rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Corrupt the record on disk.
	path := filepath.Join(dir, abscache.ModuleKey(m), rec.Fingerprint.String()+".rec")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	// A fresh session must treat it as a miss (rebuild), never a graph.
	s2, err := abscache.Open(dir, m, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, ok := s2.Get(rec.Fingerprint, f); ok {
		t.Fatal("store returned a graph from a corrupted record")
	}
	if st := s2.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after corruption = %+v", st)
	}

	// gc removes it (it is still indexed, but undecodable).
	res, err := abscache.GC(dir)
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if res.Corrupt != 1 {
		t.Fatalf("gc removed %d corrupt records, want 1", res.Corrupt)
	}
}

func TestStoreLoopSummariesPersist(t *testing.T) {
	dir := t.TempDir()
	m := compile(t)
	s, err := abscache.Open(dir, m, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	_, _, rec := buildRecord(t, m, "step")
	if err := s.Put(rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	sum := abscache.LoopSummary{Header: 1, Depth: 1, NumInstrs: 10, IVs: 1, HasGovIV: true, Invariants: 2, Reductions: 1}
	s.AddLoopSummary(rec.Fingerprint, sum)
	s.AddLoopSummary(rec.Fingerprint, sum) // idempotent
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, _, err := abscache.FindRecord(dir, "step")
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	if len(got.Loops) != 1 || got.Loops[0] != sum {
		t.Fatalf("persisted loops = %+v, want [%+v]", got.Loops, sum)
	}
}

func TestScanGCClear(t *testing.T) {
	dir := t.TempDir()
	m := compile(t)
	s, err := abscache.Open(dir, m, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, name := range []string{"step", "main"} {
		_, _, rec := buildRecord(t, m, name)
		if err := s.Put(rec); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	mods, err := abscache.ScanRoot(dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(mods) != 1 || mods[0].Records != 2 || len(mods[0].Entries) != 2 {
		t.Fatalf("scan = %+v", mods)
	}

	// Drop an orphan record (not referenced by the index) and a stale
	// temp file; gc must sweep both and keep the live records.
	modDir := mods[0].Dir
	orphanFP := ir.Fingerprint{1, 2, 3}
	orphan := abscache.Encode(&abscache.Record{Fingerprint: orphanFP, FuncName: "ghost"})
	if err := os.WriteFile(filepath.Join(modDir, orphanFP.String()+".rec"), orphan, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(modDir, ".tmp-123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := abscache.GC(dir)
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if res.Orphaned != 1 || res.Temp != 1 || res.Corrupt != 0 {
		t.Fatalf("gc = %+v", res)
	}
	mods, _ = abscache.ScanRoot(dir)
	if mods[0].Records != 2 {
		t.Fatalf("gc removed live records: %+v", mods)
	}

	if err := abscache.Clear(dir); err != nil {
		t.Fatalf("clear: %v", err)
	}
	mods, _ = abscache.ScanRoot(dir)
	if len(mods) != 0 {
		t.Fatalf("clear left %+v", mods)
	}
}

// TestFingerprintStableAcrossPrintParse is the irtext leg of the
// fingerprint-stability contract: a print→parse round trip (which may
// uniquify SSA names and drops assigned IDs) preserves fingerprints.
func TestFingerprintStableAcrossPrintParse(t *testing.T) {
	m := compile(t)
	m.AssignIDs()
	back, err := irtext.Parse(ir.Print(m))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p1, p2 := ir.NewFingerprinter(m), ir.NewFingerprinter(back)
	for _, f := range m.Functions {
		if f.IsDeclaration() {
			continue
		}
		bf := back.FunctionByName(f.Nam)
		if bf == nil {
			t.Fatalf("round trip lost @%s", f.Nam)
		}
		if a, b := p1.Function(f), p2.Function(bf); a != b {
			t.Errorf("@%s: fingerprint %s != %s after print→parse", f.Nam, b.Short(), a.Short())
		}
	}
}
