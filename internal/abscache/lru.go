package abscache

import (
	"container/list"

	"noelle/internal/ir"
)

// lruCache is the store's in-memory tier: a fixed-capacity LRU over
// decoded records, so repeated warm lookups within one process never
// touch the disk twice. Not safe for concurrent use; the Store serializes
// access.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byFP  map[ir.Fingerprint]*list.Element
}

type lruEntry struct {
	fp  ir.Fingerprint
	rec *Record
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), byFP: map[ir.Fingerprint]*list.Element{}}
}

func (c *lruCache) get(fp ir.Fingerprint) (*Record, bool) {
	el, ok := c.byFP[fp]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).rec, true
}

// put inserts (or refreshes) a record and returns the entries it pushed
// out, oldest first. The Store inspects evictees for unwritten
// loop-summary enrichment: a dirty record leaving memory silently would
// lose its summaries, which concurrent sessions thrashing a small LRU
// (the noelle-serve daemon) would hit routinely.
func (c *lruCache) put(fp ir.Fingerprint, rec *Record) []*lruEntry {
	if el, ok := c.byFP[fp]; ok {
		el.Value.(*lruEntry).rec = rec
		c.order.MoveToFront(el)
		return nil
	}
	c.byFP[fp] = c.order.PushFront(&lruEntry{fp: fp, rec: rec})
	var evicted []*lruEntry
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		e := last.Value.(*lruEntry)
		delete(c.byFP, e.fp)
		evicted = append(evicted, e)
	}
	return evicted
}

func (c *lruCache) remove(fp ir.Fingerprint) {
	if el, ok := c.byFP[fp]; ok {
		c.order.Remove(el)
		delete(c.byFP, fp)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
