// Package abscache is a persistent, content-addressed store for NOELLE
// abstractions. The expensive abstractions — per-function PDGs built over
// whole-module alias analysis, and the loop summaries derived from them —
// are serialized into versioned binary records keyed by a structural
// function fingerprint (ir.Fingerprint), fronted by an in-memory LRU and
// backed by an append-friendly on-disk layout with crash-safe
// write-temp-then-rename commits (in the spirit of rockyardkv's SST +
// inspection tooling). A warm load decodes records instead of re-running
// the Andersen solve; any mismatch — version, checksum, instruction count
// — degrades to a rebuild, never to a wrong graph. See README.md in this
// directory for the on-disk format and the invalidation rules.
package abscache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"noelle/internal/ir"
	"noelle/internal/pdg"
)

// Record format version. Bump on any change to the byte layout; readers
// reject versions they do not understand (degrading to a rebuild).
const codecVersion = 1

// recordMagic leads every record file.
var recordMagic = [4]byte{'N', 'A', 'B', 'S'}

// EdgeRec is one serialized dependence edge. Endpoints are linear
// instruction positions within the function (block order), which are
// stable across renaming, cloning, and ID renumbering. Flags reuse the
// pdg/embed.go encoding ([c][m]<class>[M][L]).
type EdgeRec struct {
	From, To int
	Flags    string
}

// LoopSummary is the per-loop abstraction digest stored alongside the
// PDG: the LS shape bits plus the IV/INV/RD counts the manager derived.
// Summaries are inspection data (noelle-cache dump), not enough to
// reconstruct the L abstraction.
type LoopSummary struct {
	Header     int // linear position of the header block within the function
	Depth      int
	NumInstrs  int
	DoWhile    bool
	IVs        int
	HasGovIV   bool
	Invariants int
	Reductions int
}

// Record is the cached abstraction bundle of one function.
type Record struct {
	Fingerprint ir.Fingerprint
	FuncName    string
	NumInstrs   int
	Edges       []EdgeRec
	Loops       []LoopSummary
}

// NewRecord captures f's PDG into a record keyed by fp. Edges whose
// endpoints fall outside f (malformed graphs) are skipped.
func NewRecord(fp ir.Fingerprint, f *ir.Function, g *pdg.Graph) *Record {
	pos := instrPositions(f)
	rec := &Record{Fingerprint: fp, FuncName: f.Nam, NumInstrs: len(pos)}
	g.Edges(func(e *pdg.Edge) bool {
		from, okF := pos[e.From]
		to, okT := pos[e.To]
		if okF && okT {
			rec.Edges = append(rec.Edges, EdgeRec{From: from, To: to, Flags: pdg.EncodeEdgeFlags(e)})
		}
		return true
	})
	sort.Slice(rec.Edges, func(i, j int) bool {
		a, b := rec.Edges[i], rec.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Flags < b.Flags
	})
	return rec
}

// BuildGraph reconstructs the function PDG from the record. It fails when
// the record's shape no longer matches f — the caller must rebuild. The
// edges come from one contiguous allocation and the graph is assembled
// through the bulk constructor: warm loads are allocation-light.
func (r *Record) BuildGraph(f *ir.Function) (*pdg.Graph, error) {
	instrs := make([]*ir.Instr, 0, r.NumInstrs)
	f.Instrs(func(in *ir.Instr) bool {
		instrs = append(instrs, in)
		return true
	})
	if len(instrs) != r.NumInstrs {
		return nil, fmt.Errorf("abscache: record for @%s has %d instructions, function has %d",
			r.FuncName, r.NumInstrs, len(instrs))
	}
	backing := make([]pdg.Edge, len(r.Edges))
	edges := make([]*pdg.Edge, len(r.Edges))
	from := make([]int, len(r.Edges))
	to := make([]int, len(r.Edges))
	for i, er := range r.Edges {
		if er.From < 0 || er.From >= len(instrs) || er.To < 0 || er.To >= len(instrs) {
			return nil, fmt.Errorf("abscache: edge %d>%d out of range in record for @%s", er.From, er.To, r.FuncName)
		}
		e := &backing[i]
		e.From, e.To = instrs[er.From], instrs[er.To]
		if err := pdg.DecodeEdgeFlags(e, er.Flags); err != nil {
			return nil, err
		}
		edges[i], from[i], to[i] = e, er.From, er.To
	}
	return pdg.NewGraphFromEdges(instrs, edges, from, to), nil
}

// instrPositions maps every instruction of f to its linear position.
func instrPositions(f *ir.Function) map[*ir.Instr]int {
	pos := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) bool {
		pos[in] = len(pos)
		return true
	})
	return pos
}

// Encode serializes the record:
//
//	magic "NABS" | version u16 | fingerprint 32B | name | numInstrs
//	| numEdges | edges (from, to, flags) | numLoops | loop summaries
//	| crc32(IEEE) of everything before, u32 LE
//
// Integers are uvarints, strings are length-prefixed.
func Encode(r *Record) []byte {
	var b bytes.Buffer
	b.Write(recordMagic[:])
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], codecVersion)
	b.Write(v[:])
	b.Write(r.Fingerprint[:])
	putStr(&b, r.FuncName)
	putUvarint(&b, uint64(r.NumInstrs))
	putUvarint(&b, uint64(len(r.Edges)))
	for _, e := range r.Edges {
		putUvarint(&b, uint64(e.From))
		putUvarint(&b, uint64(e.To))
		putStr(&b, e.Flags)
	}
	putUvarint(&b, uint64(len(r.Loops)))
	for _, l := range r.Loops {
		putUvarint(&b, uint64(l.Header))
		putUvarint(&b, uint64(l.Depth))
		putUvarint(&b, uint64(l.NumInstrs))
		bits := byte(0)
		if l.DoWhile {
			bits |= 1
		}
		if l.HasGovIV {
			bits |= 2
		}
		b.WriteByte(bits)
		putUvarint(&b, uint64(l.IVs))
		putUvarint(&b, uint64(l.Invariants))
		putUvarint(&b, uint64(l.Reductions))
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crc[:])
	return b.Bytes()
}

// Decode parses a record, verifying magic, version and checksum. Every
// failure is an error — corrupt records must read as "absent", not as a
// wrong graph.
func Decode(data []byte) (*Record, error) {
	if len(data) < len(recordMagic)+2+32+4 {
		return nil, fmt.Errorf("abscache: record truncated (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("abscache: record checksum mismatch")
	}
	if !bytes.Equal(payload[:4], recordMagic[:]) {
		return nil, fmt.Errorf("abscache: bad record magic")
	}
	if ver := binary.LittleEndian.Uint16(payload[4:6]); ver != codecVersion {
		return nil, fmt.Errorf("abscache: unsupported record version %d", ver)
	}
	rd := bytes.NewReader(payload[6:])
	rec := &Record{}
	if _, err := rd.Read(rec.Fingerprint[:]); err != nil {
		return nil, fmt.Errorf("abscache: record fingerprint: %w", err)
	}
	var err error
	if rec.FuncName, err = getStr(rd); err != nil {
		return nil, err
	}
	if rec.NumInstrs, err = getInt(rd); err != nil {
		return nil, err
	}
	numEdges, err := getInt(rd)
	if err != nil {
		return nil, err
	}
	if numEdges > 0 {
		rec.Edges = make([]EdgeRec, 0, numEdges)
	}
	flagCache := map[string]string{} // intern the handful of distinct flag strings
	for i := 0; i < numEdges; i++ {
		var e EdgeRec
		if e.From, err = getInt(rd); err != nil {
			return nil, err
		}
		if e.To, err = getInt(rd); err != nil {
			return nil, err
		}
		if e.Flags, err = getStr(rd); err != nil {
			return nil, err
		}
		if interned, ok := flagCache[e.Flags]; ok {
			e.Flags = interned
		} else {
			flagCache[e.Flags] = e.Flags
		}
		rec.Edges = append(rec.Edges, e)
	}
	numLoops, err := getInt(rd)
	if err != nil {
		return nil, err
	}
	for i := 0; i < numLoops; i++ {
		var l LoopSummary
		if l.Header, err = getInt(rd); err != nil {
			return nil, err
		}
		if l.Depth, err = getInt(rd); err != nil {
			return nil, err
		}
		if l.NumInstrs, err = getInt(rd); err != nil {
			return nil, err
		}
		bits, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("abscache: loop bits: %w", err)
		}
		l.DoWhile = bits&1 != 0
		l.HasGovIV = bits&2 != 0
		if l.IVs, err = getInt(rd); err != nil {
			return nil, err
		}
		if l.Invariants, err = getInt(rd); err != nil {
			return nil, err
		}
		if l.Reductions, err = getInt(rd); err != nil {
			return nil, err
		}
		rec.Loops = append(rec.Loops, l)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("abscache: %d trailing bytes in record", rd.Len())
	}
	return rec, nil
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}

func putStr(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func getInt(rd *bytes.Reader) (int, error) {
	v, err := binary.ReadUvarint(rd)
	if err != nil {
		return 0, fmt.Errorf("abscache: record truncated: %w", err)
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("abscache: implausible count %d", v)
	}
	return int(v), nil
}

func getStr(rd *bytes.Reader) (string, error) {
	n, err := getInt(rd)
	if err != nil {
		return "", err
	}
	if n > rd.Len() {
		return "", fmt.Errorf("abscache: string length %d exceeds record", n)
	}
	buf := make([]byte, n)
	if _, err := rd.Read(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
