package abscache

import (
	"fmt"

	"noelle/internal/loops"
)

// SummarizeLoop digests a fully built L abstraction into the bits the
// store records alongside the function's PDG: the LS shape (size, depth,
// do-while) and the IV/INV/RD counts. The loop is identified by its
// header block's position within the function, which is stable across
// renaming and ID renumbering.
func SummarizeLoop(l *loops.Loop) LoopSummary {
	f := l.LS.Fn
	header := -1
	for i, b := range f.Blocks {
		if b == l.LS.Header {
			header = i
			break
		}
	}
	return LoopSummary{
		Header:     header,
		Depth:      l.LS.Depth,
		NumInstrs:  l.LS.NumInstrs(),
		DoWhile:    l.LS.IsDoWhileShaped(),
		IVs:        len(l.IVs.IVs),
		HasGovIV:   l.IVs.GoverningIV() != nil,
		Invariants: l.Invariants.Count(),
		Reductions: len(l.Reductions.Reductions),
	}
}

// String renders the summary as one noelle-cache dump line.
func (l LoopSummary) String() string {
	shape := "while"
	if l.DoWhile {
		shape = "do-while"
	}
	gov := ""
	if l.HasGovIV {
		gov = " governing"
	}
	return fmt.Sprintf("loop@block%d depth=%d instrs=%d %s ivs=%d%s invariants=%d reductions=%d",
		l.Header, l.Depth, l.NumInstrs, shape, l.IVs, gov, l.Invariants, l.Reductions)
}
