// Package dataflow is NOELLE's DFE abstraction: an optimized engine that
// evaluates data-flow equations supplied by the user. It implements the
// conventional optimizations the paper lists — bit vectors, basic-block
// granularity transfer functions, a work-list algorithm, and loop-aware
// priority ordering — plus a set of common analyses built on it.
package dataflow

import (
	"math/bits"

	"noelle/internal/analysis"
	"noelle/internal/ir"
)

// BitVec is a fixed-width bit vector.
type BitVec []uint64

// NewBitVec returns an all-zero vector able to hold n bits.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// Set sets bit i.
func (v BitVec) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (v BitVec) Clear(i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// Get reports bit i.
func (v BitVec) Get(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// OrWith ors o into v, reporting whether v changed.
func (v BitVec) OrWith(o BitVec) bool {
	changed := false
	for i := range v {
		nv := v[i] | o[i]
		if nv != v[i] {
			v[i] = nv
			changed = true
		}
	}
	return changed
}

// AndWith ands o into v, reporting whether v changed.
func (v BitVec) AndWith(o BitVec) bool {
	changed := false
	for i := range v {
		nv := v[i] & o[i]
		if nv != v[i] {
			v[i] = nv
			changed = true
		}
	}
	return changed
}

// AndNotWith removes o's bits from v.
func (v BitVec) AndNotWith(o BitVec) {
	for i := range v {
		v[i] &^= o[i]
	}
}

// CopyFrom overwrites v with o.
func (v BitVec) CopyFrom(o BitVec) { copy(v, o) }

// Clone returns a copy.
func (v BitVec) Clone() BitVec {
	o := make(BitVec, len(v))
	copy(o, v)
	return o
}

// Equal reports bitwise equality.
func (v BitVec) Equal(o BitVec) bool {
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the population count.
func (v BitVec) Count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every set bit.
func (v BitVec) ForEach(fn func(i int)) {
	for wi, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Direction selects forward or backward propagation.
type Direction int

// Propagation directions.
const (
	Forward Direction = iota
	Backward
)

// Meet selects the confluence operator.
type Meet int

// Confluence operators.
const (
	Union Meet = iota
	Intersect
)

// Problem describes a data-flow problem at instruction granularity. The
// engine aggregates per-block transfer functions itself.
type Problem struct {
	Direction Direction
	Meet      Meet
	NumBits   int
	// Gen and Kill populate the bits generated/killed by one instruction.
	Gen  func(in *ir.Instr, set BitVec)
	Kill func(in *ir.Instr, set BitVec)
	// Boundary initializes the entry (forward) or exit (backward) value;
	// nil means empty.
	Boundary func(set BitVec)
}

// Result holds per-block IN/OUT sets and supports instruction-level
// queries by replaying block transfer functions.
type Result struct {
	Problem *Problem
	Fn      *ir.Function
	In      map[*ir.Block]BitVec
	Out     map[*ir.Block]BitVec
}

// Solve runs the work-list algorithm to a fixed point. Blocks are
// prioritized in reverse postorder for forward problems and postorder for
// backward problems, which converges quickly on loops (the paper's
// "loop-based priority").
func Solve(f *ir.Function, p *Problem) *Result {
	cfg := analysis.NewCFG(f)
	res := &Result{
		Problem: p,
		Fn:      f,
		In:      make(map[*ir.Block]BitVec, len(f.Blocks)),
		Out:     make(map[*ir.Block]BitVec, len(f.Blocks)),
	}

	// Per-block gen/kill — over every block of the function, not just the
	// reachable ones: an unreachable block can still branch into reachable
	// code (so its Out participates in a reachable meet) and its
	// instructions can still be queried through InstrIn.
	gen := map[*ir.Block]BitVec{}
	kill := map[*ir.Block]BitVec{}
	for _, b := range f.Blocks {
		g, k := NewBitVec(p.NumBits), NewBitVec(p.NumBits)
		instrs := b.Instrs
		if p.Direction == Backward {
			for i := len(instrs) - 1; i >= 0; i-- {
				applyInstr(p, instrs[i], g, k)
			}
		} else {
			for _, in := range instrs {
				applyInstr(p, in, g, k)
			}
		}
		gen[b], kill[b] = g, k
	}

	// Priority order: reverse postorder (or postorder for backward
	// problems) over the reachable blocks, then any unreachable blocks in
	// function order so they also converge instead of holding nil vectors.
	order := cfg.RPO
	if p.Direction == Backward {
		order = make([]*ir.Block, len(cfg.RPO))
		for i, b := range cfg.RPO {
			order[len(order)-1-i] = b
		}
	}
	for _, b := range f.Blocks {
		if !cfg.Reachable(b) {
			order = append(order, b)
		}
	}

	full := NewBitVec(p.NumBits)
	for i := range full {
		full[i] = ^uint64(0)
	}
	for _, b := range f.Blocks {
		res.In[b] = NewBitVec(p.NumBits)
		res.Out[b] = NewBitVec(p.NumBits)
		if p.Meet == Intersect {
			// Start optimistic (all bits) except at boundaries.
			res.In[b].CopyFrom(full)
			res.Out[b].CopyFrom(full)
		}
	}

	boundarySet := NewBitVec(p.NumBits)
	if p.Boundary != nil {
		p.Boundary(boundarySet)
	}

	inWork := map[*ir.Block]bool{}
	var work []*ir.Block
	for _, b := range order {
		work = append(work, b)
		inWork[b] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		var inputs []*ir.Block
		if p.Direction == Forward {
			inputs = cfg.Preds[b]
		} else {
			inputs = cfg.Succs[b]
		}
		cur := NewBitVec(p.NumBits)
		isBoundary := len(inputs) == 0
		if isBoundary {
			cur.CopyFrom(boundarySet)
		} else {
			if p.Meet == Intersect {
				cur.CopyFrom(full)
			}
			for _, nb := range inputs {
				var edgeVal BitVec
				if p.Direction == Forward {
					edgeVal = res.Out[nb]
				} else {
					edgeVal = res.In[nb]
				}
				if p.Meet == Union {
					cur.OrWith(edgeVal)
				} else {
					cur.AndWith(edgeVal)
				}
			}
		}

		var inSlot, outSlot BitVec
		if p.Direction == Forward {
			inSlot, outSlot = res.In[b], res.Out[b]
		} else {
			inSlot, outSlot = res.Out[b], res.In[b]
		}
		inSlot.CopyFrom(cur)

		next := cur.Clone()
		next.AndNotWith(kill[b])
		next.OrWith(gen[b])
		if next.Equal(outSlot) {
			continue
		}
		outSlot.CopyFrom(next)

		var dependents []*ir.Block
		if p.Direction == Forward {
			dependents = cfg.Succs[b]
		} else {
			dependents = cfg.Preds[b]
		}
		for _, d := range dependents {
			if !inWork[d] {
				inWork[d] = true
				work = append(work, d)
			}
		}
	}
	return res
}

func applyInstr(p *Problem, in *ir.Instr, g, k BitVec) {
	tmpG := NewBitVec(p.NumBits)
	tmpK := NewBitVec(p.NumBits)
	if p.Gen != nil {
		p.Gen(in, tmpG)
	}
	if p.Kill != nil {
		p.Kill(in, tmpK)
	}
	// Compose: block = instr ∘ block.
	g.AndNotWith(tmpK)
	g.OrWith(tmpG)
	k.AndNotWith(tmpG)
	k.OrWith(tmpK)
}

// InstrIn returns the data-flow value just before in executes (forward
// problems) or just after (backward problems seen against program order),
// by replaying the block's transfer functions.
func (r *Result) InstrIn(in *ir.Instr) BitVec {
	b := in.Parent
	p := r.Problem
	if _, ok := r.In[b]; !ok {
		// The instruction is not in the solved function (Solve initializes
		// every block, reachable or not): return a correctly-sized empty
		// vector instead of cloning nil into a zero-length one.
		return NewBitVec(p.NumBits)
	}
	cur := r.In[b].Clone()
	if p.Direction == Forward {
		for _, x := range b.Instrs {
			if x == in {
				return cur
			}
			step(p, x, cur)
		}
		return cur
	}
	// Backward: walk from the block end towards in.
	cur = r.Out[b].Clone()
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		if b.Instrs[i] == in {
			return cur
		}
		step(p, b.Instrs[i], cur)
	}
	return cur
}

func step(p *Problem, in *ir.Instr, cur BitVec) {
	tmpG := NewBitVec(p.NumBits)
	tmpK := NewBitVec(p.NumBits)
	if p.Gen != nil {
		p.Gen(in, tmpG)
	}
	if p.Kill != nil {
		p.Kill(in, tmpK)
	}
	cur.AndNotWith(tmpK)
	cur.OrWith(tmpG)
}
