package dataflow_test

import (
	"testing"
	"testing/quick"

	"noelle/internal/dataflow"
	"noelle/internal/ir"
	"noelle/internal/irtext"
	"noelle/internal/minic"
	"noelle/internal/passes"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Optimize(m)
	return m
}

func TestLivenessAcrossLoop(t *testing.T) {
	m := compile(t, `
int main() {
  int n = 40;
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}`)
	f := m.FunctionByName("main")
	lv := dataflow.NewLiveness(f)

	// The loop bound (some value feeding the compare) must be live into
	// the loop header; the accumulator phi must be live out of the body.
	header := f.BlockByName("for.header")
	if header == nil {
		t.Fatalf("no for.header:\n%s", ir.Print(m))
	}
	livePhis := 0
	for _, phi := range header.Phis() {
		if lv.LiveOut(phi, header) || lv.LiveIn(phi, header) {
			livePhis++
		}
	}
	if livePhis == 0 {
		t.Error("no loop phi is live around the loop")
	}
}

func TestReachingStores(t *testing.T) {
	m := compile(t, `
int g;
int main() {
  g = 1;
  int i;
  for (i = 0; i < 3; i = i + 1) { g = g + 1; }
  return g;
}`)
	f := m.FunctionByName("main")
	rs := dataflow.NewReachingStores(f)
	if len(rs.Stores) < 2 {
		t.Fatalf("stores found: %d, want >= 2\n%s", len(rs.Stores), ir.Print(m))
	}
	// The entry store must reach the loop header.
	header := f.BlockByName("for.header")
	first := rs.Stores[0]
	if !rs.ReachesBlock(first, header) {
		t.Error("entry store does not reach the loop header")
	}
}

// TestBitVecProperties quick-checks the bit-vector algebra the engine
// relies on.
func TestBitVecProperties(t *testing.T) {
	prop := func(aBits, bBits []uint16) bool {
		n := 128
		a, b := dataflow.NewBitVec(n), dataflow.NewBitVec(n)
		for _, x := range aBits {
			a.Set(int(x) % n)
		}
		for _, x := range bBits {
			b.Set(int(x) % n)
		}
		// (a | b) has every bit of both.
		u := a.Clone()
		u.OrWith(b)
		ok := true
		a.ForEach(func(i int) {
			if !u.Get(i) {
				ok = false
			}
		})
		b.ForEach(func(i int) {
			if !u.Get(i) {
				ok = false
			}
		})
		// count(a &^ b) + count(a & b) == count(a)
		diff := a.Clone()
		diff.AndNotWith(b)
		inter := a.Clone()
		inter.AndWith(b)
		if diff.Count()+inter.Count() != a.Count() {
			ok = false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSolveConverges: the engine reaches a fixed point where every
// block's IN equals the meet of its inputs (checked on liveness).
func TestSolveConverges(t *testing.T) {
	m := compile(t, `
int main() {
  int a = 1;
  int b = 2;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { a = a + b; } else { b = b + a; }
  }
  return a + b;
}`)
	f := m.FunctionByName("main")
	lv := dataflow.NewLiveness(f)
	res := lv.Result
	for _, b := range f.Blocks {
		// Backward: OUT[b] must include IN[s] for every successor.
		for _, s := range b.Successors() {
			bad := false
			res.In[s].ForEach(func(i int) {
				if !res.Out[b].Get(i) {
					bad = true
				}
			})
			if bad {
				t.Fatalf("fixed point violated at %s -> %s", b.Nam, s.Nam)
			}
		}
	}
}

func TestInstrLevelQueries(t *testing.T) {
	m := compile(t, `
int main() {
  int a = 5;
  int b = a * 2;
  int c = b + a;
  return c;
}`)
	f := m.FunctionByName("main")
	lv := dataflow.NewLiveness(f)
	// Find the mul: its operand 'a' must be live before it (a is used
	// again by the add).
	f.Instrs(func(in *ir.Instr) bool {
		if in.Opcode == ir.OpMul {
			live := lv.Result.InstrIn(in)
			idx, ok := lv.Universe.Index[in.Ops[0]]
			if ok && !live.Get(idx) {
				// a is constant-folded in some shapes; only fail when the
				// operand is a tracked value.
				t.Errorf("mul operand not live before mul")
			}
		}
		return true
	})
}

// TestUnreachableBlocks is the regression test for the engine skipping
// blocks outside cfg.RPO: every block — including unreachable ones, and
// reachable blocks with unreachable predecessors — must have initialized
// IN/OUT sets, and InstrIn on an instruction in an unreachable block must
// return a correctly-sized vector instead of a zero-length one.
func TestUnreachableBlocks(t *testing.T) {
	m, err := irtext.Parse(`module "m"
global @g : i64 zeroinit
func @main() i64 {
entry:
  %a = add 1, 2
  br join
dead:
  %d = mul 3, 4
  store i64 %d, @g
  br join
join:
  %r = load i64, @g
  ret %r
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := m.FunctionByName("main")

	// Forward problem over a function whose reachable block 'join' has the
	// unreachable predecessor 'dead' (this used to panic in the meet).
	rs := dataflow.NewReachingStores(f)
	for _, b := range f.Blocks {
		in, out := rs.Result.In[b], rs.Result.Out[b]
		if in == nil || out == nil {
			t.Fatalf("block %s has uninitialized IN/OUT", b.Nam)
		}
		if len(in) != len(dataflow.NewBitVec(len(rs.Stores))) {
			t.Errorf("block %s IN has wrong width", b.Nam)
		}
	}

	// Backward problem + instruction-level query inside the dead block.
	lv := dataflow.NewLiveness(f)
	dead := f.BlockByName("dead")
	if dead == nil {
		t.Fatal("no dead block")
	}
	for _, in := range dead.Instrs {
		vec := lv.Result.InstrIn(in)
		if len(vec) != (len(lv.Universe.Values)+63)/64 {
			t.Errorf("InstrIn(%s) returned %d words, want %d",
				in.Ident(), len(vec), (len(lv.Universe.Values)+63)/64)
		}
	}
	// %d must be live just after its definition inside dead (the store
	// still consumes it), which exercises the transfer-function replay
	// over the unreachable block's instructions.
	mul := dead.Instrs[0]
	if mul.Opcode != ir.OpMul {
		t.Fatalf("dead.Instrs[0] is %s, want mul", mul.Opcode)
	}
	vec := lv.Result.InstrIn(mul)
	if idx, ok := lv.Universe.Index[ir.Value(mul)]; !ok || !vec.Get(idx) {
		t.Errorf("%%d not live after its definition in the unreachable block")
	}
}
