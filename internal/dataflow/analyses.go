package dataflow

import (
	"noelle/internal/ir"
)

// ValueUniverse indexes the SSA values of a function (parameters and
// instruction results) so analyses can use bit vectors over them.
type ValueUniverse struct {
	Values []ir.Value
	Index  map[ir.Value]int
}

// NewValueUniverse enumerates f's parameters and instruction results.
func NewValueUniverse(f *ir.Function) *ValueUniverse {
	u := &ValueUniverse{Index: map[ir.Value]int{}}
	add := func(v ir.Value) {
		if _, ok := u.Index[v]; !ok {
			u.Index[v] = len(u.Values)
			u.Values = append(u.Values, v)
		}
	}
	for _, p := range f.Params {
		add(p)
	}
	f.Instrs(func(in *ir.Instr) bool {
		if in.HasResult() {
			add(in)
		}
		return true
	})
	return u
}

// Liveness computes live SSA values per block using the DFE: a value is
// live where it may still be used. Phi uses count at the end of the
// corresponding predecessor (approximated here as a use in the phi's
// block, which is sound for the liveness consumers in this repo).
type Liveness struct {
	Universe *ValueUniverse
	Result   *Result
}

// NewLiveness runs the analysis over f.
func NewLiveness(f *ir.Function) *Liveness {
	u := NewValueUniverse(f)
	p := &Problem{
		Direction: Backward,
		Meet:      Union,
		NumBits:   len(u.Values),
		Gen: func(in *ir.Instr, set BitVec) {
			for _, op := range in.Ops {
				if i, ok := u.Index[op]; ok {
					set.Set(i)
				}
			}
		},
		Kill: func(in *ir.Instr, set BitVec) {
			if i, ok := u.Index[ir.Value(in)]; ok && in.HasResult() {
				set.Set(i)
			}
		},
	}
	return &Liveness{Universe: u, Result: Solve(f, p)}
}

// LiveIn reports whether v is live at the entry of b.
func (lv *Liveness) LiveIn(v ir.Value, b *ir.Block) bool {
	i, ok := lv.Universe.Index[v]
	return ok && lv.Result.In[b].Get(i)
}

// LiveOut reports whether v is live at the exit of b.
func (lv *Liveness) LiveOut(v ir.Value, b *ir.Block) bool {
	i, ok := lv.Universe.Index[v]
	return ok && lv.Result.Out[b].Get(i)
}

// ReachingStores computes, per block, which store instructions may reach
// it (no kills across blocks: stores are only killed by provably-must-alias
// stores, which the caller can refine). Used by baseline (LLVM-style)
// tools that reason at the store level.
type ReachingStores struct {
	Stores []*ir.Instr
	Index  map[*ir.Instr]int
	Result *Result
}

// NewReachingStores runs the analysis over f.
func NewReachingStores(f *ir.Function) *ReachingStores {
	rs := &ReachingStores{Index: map[*ir.Instr]int{}}
	f.Instrs(func(in *ir.Instr) bool {
		if in.Opcode == ir.OpStore {
			rs.Index[in] = len(rs.Stores)
			rs.Stores = append(rs.Stores, in)
		}
		return true
	})
	p := &Problem{
		Direction: Forward,
		Meet:      Union,
		NumBits:   len(rs.Stores),
		Gen: func(in *ir.Instr, set BitVec) {
			if i, ok := rs.Index[in]; ok {
				set.Set(i)
			}
		},
	}
	rs.Result = Solve(f, p)
	return rs
}

// ReachesBlock reports whether store st may reach the entry of b.
func (rs *ReachingStores) ReachesBlock(st *ir.Instr, b *ir.Block) bool {
	i, ok := rs.Index[st]
	return ok && rs.Result.In[b].Get(i)
}
