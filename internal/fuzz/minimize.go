package fuzz

// Minimize greedily shrinks a failing program while the fails predicate
// keeps holding: first by dropping loop blocks one at a time (repeating
// until a fixed point, so later drops can enable earlier ones), then by
// halving the array length, which also shortens every trip count.
// Because regeneration is deterministic from (seed, config, keep mask),
// the minimized program is exactly as replayable as the original — the
// reproducer header records all three.
//
// The predicate re-runs the failing oracle on each candidate, so the
// result is guaranteed to still fail; at worst (a failure that needs
// every block) the original program comes back unchanged.
func Minimize(p *Program, fails func(*Program) bool) *Program {
	cur := p
	for changed := true; changed; {
		changed = false
		for _, i := range cur.ActiveBlocks() {
			if len(cur.ActiveBlocks()) == 1 {
				break // keep at least one block: an empty main fails nothing
			}
			cand := cur.without(i)
			if fails(cand) {
				cur = cand
				changed = true
			}
		}
		for cur.Cfg.ArrayLen > 8 {
			cand := cur.withArrayLen(cur.Cfg.ArrayLen / 2)
			if !fails(cand) {
				break
			}
			cur = cand
			changed = true
		}
	}
	return cur
}
