package fuzz

// The seed corpus under corpus/ pins the harness's detection power as
// go test regressions: each .nir file is a real DSWP/HELIX lowering
// with one hand-seeded miscompile (the same shapes internal/verify's
// mutation suite constructs in memory), plus one clean lowering as the
// negative control. Every file header records the diagnostics the comm
// linter must report (`; expect: ...`) or `; expect-clean`. The corpus
// is regenerated — never hand-edited — with:
//
//	go test ./internal/fuzz -run TestCorpus -regen-corpus
//
// so a taskgen change that alters the lowering shape refreshes the
// files while the expectations stay the regression contract.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"noelle/internal/core"
	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/irtext"
	"noelle/internal/minic"
	"noelle/internal/passes"
	"noelle/internal/tools/dswp"
	"noelle/internal/tools/helix"
	"noelle/internal/verify"
)

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite internal/fuzz/corpus from the mutation recipes")

// corpusPipelineSrc mirrors the DSWP-lowerable shape from the verify
// mutation suite: a long Independent chain feeding a Sequential
// accumulator, so the lowering carries value queues and a token queue.
const corpusPipelineSrc = `
int b[96];
int c[96];
int main() {
  int i;
  for (i = 0; i < 96; i = i + 1) { b[i] = i * 7 + 3; }
  int acc = 0;
  for (i = 0; i < 96; i = i + 1) {
    int x = b[i] * 3 + i;
    int y = x * x + 11;
    int z = (y + x) * 5 + 1;
    int w = z * z + y;
    acc = (acc + w) % 9973;
    c[i] = w % 127;
  }
  print_i64(acc);
  return acc % 251;
}`

// corpusCarriedSrc mirrors the HELIX-lowerable shape: an
// order-sensitive recurrence (sequential, signal-bracketed segment)
// inside a parallel body.
const corpusCarriedSrc = `
int a[72];
int c[72];
int main() {
  int i;
  for (i = 0; i < 72; i = i + 1) { a[i] = i * 5 + 2; }
  int acc = 1;
  for (i = 0; i < 72; i = i + 1) {
    int x = a[i] * a[i] + i;
    int y = x * 3 + 7;
    acc = (acc * 3 + y) % 4093;
    c[i] = y % 101;
  }
  print_i64(acc);
  return acc % 251;
}`

type corpusRecipe struct {
	name   string
	expect []string // comm-tier diagnostics; empty = expect-clean
	build  func(t *testing.T) *ir.Module
}

func corpusLowerDSWP(t *testing.T) *ir.Module {
	t.Helper()
	m, err := minic.Compile("corpus", corpusPipelineSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Optimize(m)
	opts := core.DefaultOptions()
	opts.MinHotness = 0
	opts.Cores = 2
	n := core.New(m, opts)
	if res := dswp.Run(n, dswp.Exec{Enabled: true}); len(res.Lowered) == 0 {
		t.Fatalf("dswp lowered nothing (rejections %v)", res.Rejections)
	}
	return m
}

func corpusLowerHELIX(t *testing.T) *ir.Module {
	t.Helper()
	m, err := minic.Compile("corpus", corpusCarriedSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Optimize(m)
	opts := core.DefaultOptions()
	opts.MinHotness = 0
	n := core.New(m, opts)
	res := helix.Run(n, false, helix.Exec{Enabled: true})
	segs := 0
	for _, lo := range res.Lowered {
		segs += lo.Segments
	}
	if len(res.Lowered) == 0 || segs == 0 {
		t.Fatalf("helix lowered no signal-carrying loop (lowered %v)", res.Lowered)
	}
	return m
}

// corpusStageFn finds stage idx of the first DSWP family in m.
func corpusStageFn(t *testing.T, m *ir.Module, idx int) *ir.Function {
	t.Helper()
	for _, f := range m.Functions {
		if f.MD.Get(verify.MDKind) == verify.KindDSWPStage && f.MD.Get(verify.MDStage) == fmt.Sprint(idx) {
			return f
		}
	}
	t.Fatalf("lowered module has no DSWP stage %d", idx)
	return nil
}

func corpusFindCall(f *ir.Function, extern string, pred func(*ir.Instr) bool) *ir.Instr {
	var found *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Opcode != ir.OpCall {
			return true
		}
		if c := in.CalledFunction(); c == nil || c.Nam != extern {
			return true
		}
		if pred != nil && !pred(in) {
			return true
		}
		found = in
		return false
	})
	return found
}

func isTokenPush(in *ir.Instr) bool {
	args := in.CallArgs()
	if len(args) != 2 {
		return false
	}
	c, ok := args[1].(*ir.Const)
	return ok && c.Int == 1
}

func corpusHelixTaskFn(t *testing.T, m *ir.Module) *ir.Function {
	t.Helper()
	for _, f := range m.Functions {
		if f.MD.Get(verify.MDKind) == verify.KindHelixTask &&
			corpusFindCall(f, interp.ExternSignalWait, nil) != nil {
			return f
		}
	}
	t.Fatal("no signal-carrying helix task in lowered module")
	return nil
}

func corpusRecipes() []corpusRecipe {
	return []corpusRecipe{
		{
			name: "clean_dswp",
			build: func(t *testing.T) *ir.Module {
				return corpusLowerDSWP(t)
			},
		},
		{
			name:   "dropped_token_push",
			expect: []string{"but never pushed"},
			build: func(t *testing.T) *ir.Module {
				m := corpusLowerDSWP(t)
				push := corpusFindCall(corpusStageFn(t, m, 0), interp.ExternQueuePush, isTokenPush)
				if push == nil {
					t.Fatal("stage 0 has no token push")
				}
				push.Parent.Remove(push)
				return m
			},
		},
		{
			name:   "double_close",
			expect: []string{"(double close)"},
			build: func(t *testing.T) *ir.Module {
				m := corpusLowerDSWP(t)
				cl := corpusFindCall(corpusStageFn(t, m, 0), interp.ExternQueueClose, nil)
				if cl == nil {
					t.Fatal("stage 0 closes nothing")
				}
				dup := &ir.Instr{Opcode: ir.OpCall, Ty: cl.Ty, Ops: append([]ir.Value{}, cl.Ops...)}
				cl.Parent.InsertAfter(dup, cl)
				return m
			},
		},
		{
			name:   "push_hoisted_out_of_loop",
			expect: []string{"does not execute exactly once per iteration"},
			build: func(t *testing.T) *ir.Module {
				m := corpusLowerDSWP(t)
				s0 := corpusStageFn(t, m, 0)
				push := corpusFindCall(s0, interp.ExternQueuePush, isTokenPush)
				cl := corpusFindCall(s0, interp.ExternQueueClose, nil)
				if push == nil || cl == nil {
					t.Fatal("stage 0 lacks push/close to rearrange")
				}
				push.Parent.Remove(push)
				cl.Parent.InsertBefore(push, cl)
				return m
			},
		},
		{
			name:   "retargeted_pop",
			expect: []string{"but never popped"},
			build: func(t *testing.T) *ir.Module {
				m := corpusLowerDSWP(t)
				s1 := corpusStageFn(t, m, 1)
				var pops []*ir.Instr
				s1.Instrs(func(in *ir.Instr) bool {
					if in.Opcode == ir.OpCall {
						if c := in.CalledFunction(); c != nil && c.Nam == interp.ExternQueuePop {
							pops = append(pops, in)
						}
					}
					return true
				})
				if len(pops) < 2 {
					t.Fatalf("stage 1 has %d pops, need 2 to retarget", len(pops))
				}
				pops[0].Ops[1] = pops[1].Ops[1]
				return m
			},
		},
		{
			name:   "swapped_wait_fire",
			expect: []string{"precedes its wait (happens-before chain is cyclic)"},
			build: func(t *testing.T) *ir.Module {
				m := corpusLowerHELIX(t)
				task := corpusHelixTaskFn(t, m)
				wait := corpusFindCall(task, interp.ExternSignalWait, nil)
				fire := corpusFindCall(task, interp.ExternSignalFire, nil)
				if wait == nil || fire == nil {
					t.Fatal("task lacks the wait/fire bracket")
				}
				fire.Parent.Remove(fire)
				wait.Parent.InsertBefore(fire, wait)
				return m
			},
		},
		{
			name:   "dropped_fire",
			expect: []string{"awaited but never fired"},
			build: func(t *testing.T) *ir.Module {
				m := corpusLowerHELIX(t)
				fire := corpusFindCall(corpusHelixTaskFn(t, m), interp.ExternSignalFire, nil)
				if fire == nil {
					t.Fatal("task has no fire")
				}
				fire.Parent.Remove(fire)
				return m
			},
		},
	}
}

// TestCorpusRegen rewrites the corpus files when -regen-corpus is set;
// otherwise it only checks the recipes still build (so a taskgen change
// that breaks a recipe is caught here, with the regen command in the
// failure message, not as a stale-file mystery in TestCorpusReplay).
func TestCorpusRegen(t *testing.T) {
	for _, r := range corpusRecipes() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			m := r.build(t)
			if !*regenCorpus {
				return
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "; corpus: %s — hand-seeded comm-protocol miscompile (see corpus_test.go)\n", r.name)
			if len(r.expect) == 0 {
				sb.WriteString("; expect-clean\n")
			}
			for _, e := range r.expect {
				fmt.Fprintf(&sb, "; expect: %s\n", e)
			}
			sb.WriteString(ir.Print(m))
			if err := os.MkdirAll("corpus", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join("corpus", r.name+".nir"), []byte(sb.String()), 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCorpusReplay replays every corpus file through the comm-tier
// oracle: broken shapes must be flagged with their recorded
// diagnostics, the clean control must pass, and no corpus entry may
// trip the shallower quick/SSA tiers (the miscompiles are
// SSA-preserving by construction — that is what makes them a dynamic
// hazard worth a dedicated linter).
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("corpus", "*.nir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files (err=%v); regenerate with: go test ./internal/fuzz -run TestCorpus -regen-corpus", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var expects []string
			clean := false
			for _, line := range strings.Split(string(data), "\n") {
				if s, ok := strings.CutPrefix(line, "; expect: "); ok {
					expects = append(expects, s)
				}
				if line == "; expect-clean" {
					clean = true
				}
			}
			if !clean && len(expects) == 0 {
				t.Fatalf("%s declares no expectations; regenerate the corpus", file)
			}
			m, err := irtext.Parse(string(data))
			if err != nil {
				t.Fatalf("corpus file does not parse: %v", err)
			}
			res := verify.Module(m, verify.TierComm)
			if res.CountAt(verify.TierQuick) > 0 || res.CountAt(verify.TierSSA) > 0 {
				t.Fatalf("corpus entry trips shallow tiers (must be SSA-preserving): %v", res.Err())
			}
			if clean {
				if err := res.Err(); err != nil {
					t.Fatalf("clean control flagged by the comm tier: %v", err)
				}
				return
			}
			for _, want := range expects {
				found := false
				for _, f := range res.Findings {
					if strings.Contains(f.Detail, want) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("comm tier did not report %q; findings:\n%v", want, res.Err())
				}
			}
		})
	}
}
