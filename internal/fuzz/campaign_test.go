package fuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testConfig keeps in-process campaign tests fast: small programs, a
// reduced matrix, no reproducer minimization overhead unless a test
// asks for it.
func testConfig() Config {
	return Config{
		Gen:     GenConfig{Blocks: 4, Arrays: 3, ArrayLen: 32},
		Matrix:  Matrix{Techniques: []string{"doall", "dswp", "auto"}, Cores: []int{2}, QueueCaps: []int{0}},
		Timeout: 20 * time.Second,
	}
}

// TestCampaignCleanSeeds is the harness's steady-state contract: a
// short fixed-seed campaign over the full oracle stack reports zero
// failures and actually lowered something.
func TestCampaignCleanSeeds(t *testing.T) {
	c := New(testConfig())
	var seeds []int64
	for s := int64(1); s <= 6; s++ {
		seeds = append(seeds, s)
	}
	st := c.RunSeeds(seeds)
	if len(st.Failures) > 0 {
		t.Fatalf("clean campaign reported failures:\n%s", failureList(st))
	}
	if st.Programs != len(seeds) {
		t.Fatalf("judged %d programs, want %d", st.Programs, len(seeds))
	}
	if st.Lowered == 0 {
		t.Fatal("campaign lowered nothing; the oracles never saw a parallel lowering")
	}
	if st.Executions == 0 {
		t.Fatal("campaign performed no differential executions")
	}
}

// TestCampaignParallelMatchesSequential pins that the worker-pool path
// aggregates the same stats as the sequential path (failure ordering
// aside).
func TestCampaignParallelMatchesSequential(t *testing.T) {
	cfg := testConfig()
	seeds := []int64{1, 2, 3, 4}
	seqSt := New(cfg).RunSeeds(seeds)
	cfg.Parallel = 3
	parSt := New(cfg).RunSeeds(seeds)
	if seqSt.Programs != parSt.Programs || seqSt.Cells != parSt.Cells ||
		seqSt.Lowered != parSt.Lowered || seqSt.Executions != parSt.Executions ||
		len(seqSt.Failures) != len(parSt.Failures) {
		t.Fatalf("parallel campaign stats diverge:\n  seq: %s\n  par: %s", seqSt.Summary(), parSt.Summary())
	}
}

// TestCampaignFailureWritesRepro forces a failure through the real
// reporting path (an impossible oracle via a poisoned check) and
// asserts the reproducer lands on disk with a replayable header.
func TestCampaignFailureWritesRepro(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.OutDir = dir
	cfg.NoMinimize = true
	c := New(cfg)
	p := Generate(5, cfg.Gen)
	cell := Cell{Technique: "dswp", Cores: 2, QueueCap: 0}
	f := c.fail(p, "campaign", &cell, "synthetic failure for the reporting path")
	if f.Repro == "" {
		t.Fatal("no reproducer path recorded")
	}
	data, err := os.ReadFile(f.Repro)
	if err != nil {
		t.Fatalf("reproducer not written: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		"; noelle-fuzz reproducer",
		"seed=5",
		"tech=dswp cores=2 qcap=0",
		"; replay: go run ./cmd/noelle-fuzz",
		"func @", // the IR dump itself
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("reproducer missing %q:\n%s", want, firstN(text, 600))
		}
	}
	if f.Replay == "" || !strings.Contains(f.Replay, "-seed-base 5") {
		t.Fatalf("replay command not filled in: %q", f.Replay)
	}
	if filepath.Ext(f.Repro) != ".nir" {
		t.Fatalf("reproducer is not a .nir file: %s", f.Repro)
	}
}

// TestInjectMiscompileCaught is the acceptance criterion in miniature:
// seed a known miscompile (the dropped token push from the verify
// mutation suite) into a real DSWP lowering of a generated program and
// require the campaign's static oracle to catch it and write a
// reproducer.
func TestInjectMiscompileCaught(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.OutDir = dir
	c := New(cfg)
	f, caught, err := c.InjectMiscompile(40)
	if err != nil {
		t.Fatalf("inject leg could not run: %v", err)
	}
	if !caught {
		t.Fatal("injected miscompile was not caught by the comm oracle")
	}
	if !strings.Contains(f.Reason, "never pushed") {
		t.Fatalf("oracle caught the mutation but not by its signature diagnostic: %s", f.Reason)
	}
	if f.Repro == "" {
		t.Fatal("inject leg wrote no reproducer")
	}
	data, err := os.ReadFile(f.Repro)
	if err != nil {
		t.Fatalf("reproducer not written: %v", err)
	}
	if !strings.Contains(string(data), "injected miscompile") {
		t.Fatal("reproducer header does not name the injection")
	}
}

// TestStressLeg runs the concurrency leg on a couple of seeds. Under
// -race this doubles as the data-race probe for the shared compiled
// code cache and the queue runtime.
func TestStressLeg(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	st := c.Stress([]int64{1, 2, 3, 4}, 4, 2)
	if len(st.Failures) > 0 {
		t.Fatalf("stress leg failures:\n%s", failureList(st))
	}
	if st.Lowered == 0 {
		t.Fatal("stress leg lowered nothing; no concurrency was exercised")
	}
}

// TestFaultsLeg runs the fault-injection leg: step-budget exhaustion
// and aborted workers must both terminate cleanly on every engine.
func TestFaultsLeg(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	st := c.Faults([]int64{1, 2, 3, 4, 5, 6})
	if len(st.Failures) > 0 {
		t.Fatalf("faults leg failures:\n%s", failureList(st))
	}
	if st.Lowered == 0 {
		t.Fatal("faults leg lowered nothing; no faults were injected")
	}
	if st.Executions == 0 {
		t.Fatal("faults leg executed nothing")
	}
}

func failureList(st Stats) string {
	var sb strings.Builder
	for _, f := range st.Failures {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

func firstN(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
