package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"noelle/internal/ir"
	"noelle/internal/minic"
	"noelle/internal/passes"
)

// GenConfig sizes the generated programs. The zero value selects the
// campaign defaults; smaller values make cheaper programs for bounded
// smoke runs.
type GenConfig struct {
	// Blocks is the number of loop blocks main executes between the
	// array-init prologue and the checksum epilogue.
	Blocks int
	// Arrays is the number of shared global int arrays.
	Arrays int
	// ArrayLen is the element count of every global array (and so the
	// trip count of most generated loops).
	ArrayLen int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Blocks <= 0 {
		c.Blocks = 5
	}
	if c.Arrays < 2 {
		c.Arrays = 4
	}
	if c.ArrayLen < 8 {
		c.ArrayLen = 64
	}
	return c
}

// BlockKind names one generated loop shape.
type BlockKind string

// The loop shapes the generator draws from. The first three are the
// parallelization candidates (the hot block is always one of them so
// DOALL/DSWP/HELIX have plausible work); the rest are adversarial
// context: loop-carried aliasing, data-dependent control flow, calls,
// and non-unit strides that the planners must reject or handle.
const (
	KindMap        BlockKind = "map"        // independent per-element writes: DOALL bait
	KindReduction  BlockKind = "reduction"  // privatizable accumulators: DOALL bait
	KindRecurrence BlockKind = "recurrence" // order-sensitive recurrence behind a long chain: DSWP/HELIX bait
	KindNested     BlockKind = "nested"     // two-deep loop nest over a flattened index
	KindAlias      BlockKind = "alias"      // loop-carried memory dependence through offset reads
	KindBranchy    BlockKind = "branchy"    // while-loop with data-dependent continue/break
	KindCall       BlockKind = "call"       // body calls a generated helper function
	KindStride     BlockKind = "stride"     // geometric stride + triangular inner bound
)

var hotKinds = []BlockKind{KindMap, KindReduction, KindRecurrence}

var coldKinds = []BlockKind{
	KindMap, KindReduction, KindRecurrence, KindNested,
	KindAlias, KindBranchy, KindCall, KindStride,
}

// Block is one generated loop nest of main.
type Block struct {
	Kind BlockKind
	Src  string
}

// Program is one deterministically generated mini-C program. The same
// (Seed, Cfg) pair always regenerates the identical program, which is
// what makes a bare seed a complete reproducer; the keep mask is the
// minimizer's handle for dropping blocks without disturbing the ones
// that remain.
type Program struct {
	Seed int64
	Cfg  GenConfig

	Helpers []string
	Blocks  []Block
	keep    []bool
}

// Generate builds the program for one seed. Generation is pure: every
// random draw comes from a rand.Rand seeded with seed, so the output is
// identical across processes and platforms.
func Generate(seed int64, cfg GenConfig) *Program {
	cfg = cfg.withDefaults()
	g := &genState{
		rng: rand.New(rand.NewSource(seed)),
		cfg: cfg,
	}
	p := &Program{Seed: seed, Cfg: cfg}
	p.Helpers = g.helpers()
	for b := 0; b < cfg.Blocks; b++ {
		kind := coldKinds[g.rng.Intn(len(coldKinds))]
		hot := b == 0
		if hot {
			// The first block is the hot loop: a parallelization
			// candidate with a deep arithmetic chain so it dominates the
			// profile the planners see.
			kind = hotKinds[g.rng.Intn(len(hotKinds))]
		}
		p.Blocks = append(p.Blocks, g.block(b, kind, hot))
	}
	p.keep = make([]bool, len(p.Blocks))
	for i := range p.keep {
		p.keep[i] = true
	}
	return p
}

// Name is the module name the program compiles under.
func (p *Program) Name() string { return fmt.Sprintf("fuzz_seed%d", p.Seed) }

// ActiveBlocks returns the indices the keep mask retains.
func (p *Program) ActiveBlocks() []int {
	var out []int
	for i, k := range p.keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// Source assembles the mini-C text: globals, helpers, then a main of
// array-init loops, the active blocks, a checksum sweep over every
// array, and prints of all accumulators (so every block's effect is
// observable in Output and in the exit code).
func (p *Program) Source() string {
	var sb strings.Builder
	n := p.Cfg.ArrayLen
	for a := 0; a < p.Cfg.Arrays; a++ {
		fmt.Fprintf(&sb, "int a%d[%d];\n", a, n)
	}
	sb.WriteString("\n")
	for _, h := range p.Helpers {
		sb.WriteString(h)
		sb.WriteString("\n")
	}
	sb.WriteString("int main() {\n")
	sb.WriteString("  int s0 = 1;\n  int s1 = 2;\n  int s2 = 3;\n  int s3 = 5;\n")
	for a := 0; a < p.Cfg.Arrays; a++ {
		// Distinct affine seeds per array so no two arrays start equal.
		fmt.Fprintf(&sb, "  { int i; for (i = 0; i < %d; i = i + 1) { a%d[i] = (i * %d + %d) %% %d + 1; } }\n",
			n, a, 7+4*a, 3+a, 4093)
	}
	for i, b := range p.Blocks {
		if !p.keep[i] {
			continue
		}
		sb.WriteString(b.Src)
	}
	sb.WriteString("  int chk = 17;\n")
	for a := 0; a < p.Cfg.Arrays; a++ {
		fmt.Fprintf(&sb, "  { int i; for (i = 0; i < %d; i = i + 1) { chk = (chk * 31 + a%d[i] %% 251) %% 65521; } }\n", n, a)
	}
	sb.WriteString("  print_i64(s0);\n  print_i64(s1);\n  print_i64(s2);\n  print_i64(s3);\n  print_i64(chk);\n")
	sb.WriteString("  return (s0 + s1 + s2 + s3 + chk) % 251;\n}\n")
	return sb.String()
}

// Compile builds the program to optimized, verified IR — the same
// minic → passes.Optimize pipeline the bundled benchmarks use, so a
// generated module enters the campaign exactly as verifier-clean as a
// hand-written one.
func (p *Program) Compile() (*ir.Module, error) {
	m, err := minic.Compile(p.Name(), p.Source())
	if err != nil {
		return nil, fmt.Errorf("fuzz: seed %d does not compile: %w", p.Seed, err)
	}
	passes.Optimize(m)
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("fuzz: seed %d produced unverifiable IR: %w", p.Seed, err)
	}
	return m, nil
}

func (p *Program) clone() *Program {
	q := *p
	q.keep = append([]bool(nil), p.keep...)
	return &q
}

// without returns a copy with block i dropped from the keep mask.
func (p *Program) without(i int) *Program {
	q := p.clone()
	q.keep[i] = false
	return q
}

// withArrayLen regenerates the program at a smaller array length,
// preserving the keep mask. Regeneration is deterministic from the
// seed, so the shrunken program is as replayable as the original.
func (p *Program) withArrayLen(n int) *Program {
	cfg := p.Cfg
	cfg.ArrayLen = n
	q := Generate(p.Seed, cfg)
	copy(q.keep, p.keep)
	return q
}

// genState carries the generation randomness and sizing.
type genState struct {
	rng *rand.Rand
	cfg GenConfig
}

var primes = []int{251, 509, 1021, 2039, 4093, 8191, 16381, 32749, 65521}
var smallConsts = []int{3, 5, 7, 11, 13, 17, 19, 23, 29, 31}

func (g *genState) prime() int { return primes[g.rng.Intn(len(primes))] }
func (g *genState) small() int { return smallConsts[g.rng.Intn(len(smallConsts))] }
func (g *genState) arr() int   { return g.rng.Intn(g.cfg.Arrays) }

// arr2 picks two distinct arrays (source, destination).
func (g *genState) arr2() (int, int) {
	a := g.arr()
	b := g.arr()
	for b == a {
		b = (b + 1) % g.cfg.Arrays
	}
	return a, b
}

// helpers emits two small pure functions the call blocks target. They
// are always generated (even if no call block draws them) so the corpus
// keeps unused functions for the dead tool to notice.
func (g *genState) helpers() []string {
	var hs []string
	for h := 0; h < 2; h++ {
		trip := 2 + g.rng.Intn(5)
		hs = append(hs, fmt.Sprintf(
			"int h%d(int x) {\n  int r = x %% %d + 1;\n  int k;\n  for (k = 0; k < %d; k = k + 1) { r = (r * %d + k) %% %d; }\n  return r;\n}\n",
			h, g.prime(), trip, g.small(), g.prime()))
	}
	return hs
}

// chain emits a depth-long arithmetic chain seeded by expression in,
// with every second step bounded by a modulus so values never overflow
// (and so stay non-negative: generated array indices derive only from
// induction variables, but values flow into %, /, and shifts where
// signedness would otherwise make ledgers diverge for the wrong
// reason). Returns the emitted lines and the last temporary's name.
func (g *genState) chain(pfx string, in string, depth int) (string, string) {
	var sb strings.Builder
	prev := in
	last := in
	for d := 0; d < depth; d++ {
		v := fmt.Sprintf("%st%d", pfx, d)
		if d%2 == 0 {
			fmt.Fprintf(&sb, "      int %s = %s * %d + %s;\n", v, prev, g.small(), last)
		} else {
			fmt.Fprintf(&sb, "      int %s = (%s * %s + %s) %% %d;\n", v, prev, prev, last, g.prime())
		}
		last = prev
		prev = v
	}
	return sb.String(), prev
}

// block generates one loop block. Hot blocks get a deep chain over the
// full array; cold blocks stay shallow so the hot loop dominates the
// profile and remains the planners' obvious target.
func (g *genState) block(idx int, kind BlockKind, hot bool) Block {
	n := g.cfg.ArrayLen
	depth := 1 + g.rng.Intn(2)
	if hot {
		depth = 6 + g.rng.Intn(4)
	}
	pfx := fmt.Sprintf("b%d", idx)
	var sb strings.Builder
	fmt.Fprintf(&sb, "  { /* block %d: %s */\n", idx, kind)
	acc := fmt.Sprintf("s%d", g.rng.Intn(4))
	switch kind {
	case KindMap:
		src, dst := g.arr2()
		body, out := g.chain(pfx, "x", depth)
		fmt.Fprintf(&sb, "    int i;\n    for (i = 0; i < %d; i = i + 1) {\n      int x = a%d[i] + i;\n%s      a%d[i] = %s %% %d + i %% %d;\n      %s = %s + %s %% %d;\n    }\n",
			n, src, body, dst, out, g.prime(), g.small(), acc, acc, out, g.small())
	case KindReduction:
		src := g.arr()
		body, out := g.chain(pfx, "x", depth)
		acc2 := fmt.Sprintf("s%d", g.rng.Intn(4))
		fmt.Fprintf(&sb, "    int i;\n    for (i = 0; i < %d; i = i + 1) {\n      int x = a%d[i] * %d + i;\n%s      %s = %s + %s %% %d;\n      %s = %s + x %% %d;\n    }\n",
			n, src, g.small(), body, acc, acc, out, g.prime(), acc2, acc2, g.small())
	case KindRecurrence:
		src, dst := g.arr2()
		body, out := g.chain(pfx, "x", depth)
		mod := g.prime()
		fmt.Fprintf(&sb, "    int acc = %d;\n    int i;\n    for (i = 0; i < %d; i = i + 1) {\n      int x = a%d[i];\n%s      acc = (acc * %d + %s) %% %d;\n      a%d[i] = %s %% %d;\n    }\n    %s = %s + acc;\n",
			1+g.rng.Intn(9), n, src, body, g.small(), out, mod, dst, out, 127, acc, acc)
	case KindNested:
		rows := 4 + g.rng.Intn(4)
		cols := n / rows
		if cols < 2 {
			cols = 2
		}
		src, dst := g.arr2()
		fmt.Fprintf(&sb, "    int r;\n    for (r = 0; r < %d; r = r + 1) {\n      int j;\n      for (j = 0; j < %d; j = j + 1) {\n        int x = a%d[(r * %d + j) %% %d];\n        %s = %s + (x * %d + r + j) %% %d;\n        a%d[(r * %d + j) %% %d] = x + r %% %d;\n      }\n    }\n",
			rows, cols, src, cols, n, acc, acc, g.small(), g.prime(), dst, cols, n, g.small())
	case KindAlias:
		a := g.arr()
		off := 1 + g.rng.Intn(n/2)
		fmt.Fprintf(&sb, "    int i;\n    for (i = 0; i < %d; i = i + 1) {\n      a%d[i] = (a%d[(i + %d) %% %d] * %d + i) %% %d;\n      %s = %s + a%d[i] %% %d;\n    }\n",
			n, a, a, off, n, g.small(), g.prime(), acc, acc, a, g.small())
	case KindBranchy:
		src, dst := g.arr2()
		step := 2 + g.rng.Intn(2)
		fmt.Fprintf(&sb, "    int i = 0;\n    while (i < %d) {\n      int x = a%d[i];\n      if (x %% %d == 0) { i = i + %d; continue; }\n      if (%s > 100000000) { break; }\n      %s = %s + x %% %d;\n      a%d[i] = (x * %d + i) %% %d;\n      i = i + 1;\n    }\n",
			n, src, g.small(), step, acc, acc, acc, g.small(), dst, g.small(), g.prime())
	case KindCall:
		src := g.arr()
		h := g.rng.Intn(2)
		fmt.Fprintf(&sb, "    int i;\n    for (i = 0; i < %d; i = i + 1) {\n      %s = %s + h%d(a%d[i] + i) %% %d;\n    }\n",
			n, acc, acc, h, src, g.prime())
	case KindStride:
		src := g.arr()
		fmt.Fprintf(&sb, "    int i;\n    for (i = 1; i < %d; i = i * 2) {\n      int j;\n      for (j = 0; j < i %% 17 + 1; j = j + 1) {\n        %s = %s + (a%d[(i + j) %% %d] * %d) %% %d;\n      }\n    }\n",
			n, acc, acc, src, n, g.small(), g.prime())
	}
	sb.WriteString("  }\n")
	return Block{Kind: kind, Src: sb.String()}
}
