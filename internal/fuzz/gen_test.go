package fuzz

import (
	"strings"
	"testing"

	"noelle/internal/interp"
	"noelle/internal/interp/interptest"
)

// TestGenerateDeterministic pins the reproducibility contract the whole
// harness rests on: the same seed and config must regenerate the same
// program, byte for byte, in a fresh process as much as in this one.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	seen := map[string]int64{}
	for seed := int64(1); seed <= 20; seed++ {
		src := Generate(seed, GenConfig{}).Source()
		if prev, dup := seen[src]; dup {
			t.Fatalf("seeds %d and %d generated identical programs", prev, seed)
		}
		seen[src] = seed
	}
}

// TestGenerateCompilesAndRuns sweeps a block of seeds through the
// program-level oracles: verifier-clean compile, bounded execution on
// the walker, and engine-tier agreement.
func TestGenerateCompilesAndRuns(t *testing.T) {
	cfg := GenConfig{Blocks: 4, Arrays: 3, ArrayLen: 32}
	for seed := int64(1); seed <= 25; seed++ {
		p := Generate(seed, cfg)
		m, err := p.Compile()
		if err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, p.Source())
		}
		walker, _, diffs, err := interptest.TiersAgree(m, interptest.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if walker.Err != nil {
			t.Fatalf("seed %d errors at runtime: %v\n%s", seed, walker.Err, p.Source())
		}
		if len(diffs) > 0 {
			t.Fatalf("seed %d: engine tiers disagree: %s", seed, strings.Join(diffs, "; "))
		}
		if walker.Output == "" {
			t.Fatalf("seed %d produced no output (checksums missing?)", seed)
		}
	}
}

// TestGenerateRoundTrip is the focused irtext round-trip unit test over
// generator output: print → parse → print byte-identical, with a stable
// structural fingerprint. The campaign asserts the same property on
// every seed it judges; this pins it independently of the campaign.
func TestGenerateRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		p := Generate(seed, GenConfig{Blocks: 4, Arrays: 3, ArrayLen: 32})
		m, err := p.Compile()
		if err != nil {
			t.Fatalf("seed %d does not compile: %v", seed, err)
		}
		if reason := RoundTrip(m); reason != "" {
			t.Fatalf("seed %d: %s", seed, reason)
		}
	}
}

// TestGenerateHotBlockLowers asserts the generator's bias works: across
// a modest seed range, at least one technique lowers at least one
// generated program — otherwise the whole campaign is a no-op that
// "passes" without testing any parallel lowering.
func TestGenerateHotBlockLowers(t *testing.T) {
	c := New(Config{Gen: GenConfig{Blocks: 4, Arrays: 3, ArrayLen: 32}})
	for seed := int64(1); seed <= 15; seed++ {
		p := Generate(seed, c.cfg.Gen)
		m, err := p.Compile()
		if err != nil {
			continue
		}
		if _, lowered, err := c.lower(m, "auto", 4, 0); err == nil && lowered {
			return
		}
	}
	t.Fatal("no seed in 1..15 produced any lowering under auto; generator bias is broken")
}

func TestMinimizeShrinks(t *testing.T) {
	p := Generate(7, GenConfig{})
	failsAlways := func(q *Program) bool { return true }
	min := Minimize(p, failsAlways)
	if got := len(min.ActiveBlocks()); got != 1 {
		t.Fatalf("minimizer kept %d blocks under an always-failing oracle, want 1", got)
	}
	if min.Cfg.ArrayLen != 8 {
		t.Fatalf("minimizer left ArrayLen %d, want the floor 8", min.Cfg.ArrayLen)
	}
	// The minimized program must itself regenerate deterministically.
	again := Minimize(Generate(7, GenConfig{}), failsAlways)
	if min.Source() != again.Source() {
		t.Fatal("minimization is not deterministic")
	}

	// A predicate that needs a specific block must keep exactly that one.
	idx := p.ActiveBlocks()[len(p.ActiveBlocks())-1]
	needsLast := func(q *Program) bool {
		for _, i := range q.ActiveBlocks() {
			if i == idx {
				return true
			}
		}
		return false
	}
	min = Minimize(p, needsLast)
	if got := min.ActiveBlocks(); len(got) != 1 || got[0] != idx {
		t.Fatalf("minimizer kept blocks %v, want exactly [%d]", got, idx)
	}
}

func TestRunModuleExternOverride(t *testing.T) {
	c := New(Config{Gen: GenConfig{Blocks: 4, Arrays: 3, ArrayLen: 32}})
	poison := map[string]interp.Extern{
		interp.ExternQueuePush: func(it *interp.Interp, args []uint64) (uint64, error) {
			return 0, errInjectedFault
		},
	}
	for seed := int64(1); seed <= 20; seed++ {
		m, err := Generate(seed, c.cfg.Gen).Compile()
		if err != nil {
			continue
		}
		w, lowered, err := c.lower(m, "dswp", 2, 0)
		if err != nil || !lowered {
			continue
		}
		clean, err := interptest.RunModule(w, interp.EngineWalker, interptest.Config{SeqDispatch: true, DispatchWorkers: 2})
		if err != nil || clean.Err != nil || clean.Comm[1] == 0 {
			continue // lowering without queue traffic; override unexercised
		}
		r, err := interptest.RunModule(w, interp.EngineWalker, interptest.Config{
			SeqDispatch: true, DispatchWorkers: 2, Externs: poison,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Err == nil || !strings.Contains(r.Err.Error(), errInjectedFault.Error()) {
			t.Fatalf("seed %d: injected extern fault did not surface: %v", seed, r.Err)
		}
		return
	}
	t.Fatal("no seed in 1..20 produced a queue-communicating DSWP lowering")
}
