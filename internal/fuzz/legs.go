package fuzz

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"noelle/internal/core"
	"noelle/internal/interp"
	"noelle/internal/interp/interptest"
	"noelle/internal/ir"
	"noelle/internal/tool"
	"noelle/internal/verify"
)

// lower clones m and runs one technique's pipeline over the clone at
// the given coordinate. Returns the (possibly transformed) clone and
// whether anything was lowered.
func (c *Campaign) lower(m *ir.Module, tech string, cores, qcap int) (*ir.Module, bool, error) {
	work := ir.CloneModule(m)
	opts := core.DefaultOptions()
	opts.Cores = cores
	opts.MinHotness = c.cfg.MinHotness
	n := core.New(work, opts)
	topts := tool.DefaultOptions()
	topts.ExecutePlans = true
	topts.QueueCapacity = qcap
	topts.VerifyTier = "comm"
	var perr error
	gerr := guard(fmt.Sprintf("pipeline tech=%s cores=%d qcap=%d", tech, cores, qcap), c.cfg.Timeout, func() error {
		_, _, perr = tool.RunPipeline(context.Background(), n, []string{tech}, topts)
		return nil
	})
	if gerr != nil {
		return work, false, gerr
	}
	if perr != nil {
		return work, false, perr
	}
	return work, ir.ModuleFingerprint(work) != ir.ModuleFingerprint(m), nil
}

// Stress is the concurrency leg: for each seed, the program is lowered
// by the auto orchestrator and then executed by many goroutines at
// once, every run a fresh dispatch over its own memory image, engines
// alternating. Each concurrent result must be byte-identical to the
// module's own -seq fallback. Run it under -race: the point is to shake
// the shared image, queue runtime, and compiled-code cache with
// overlapping dispatches, not to measure anything.
func (c *Campaign) Stress(seeds []int64, goroutines, rounds int) Stats {
	var st Stats
	if goroutines <= 0 {
		goroutines = 4
	}
	if rounds <= 0 {
		rounds = 2
	}
	for _, seed := range seeds {
		p := Generate(seed, c.cfg.Gen)
		st.Programs++
		m, err := p.Compile()
		if err != nil {
			st.Failures = append(st.Failures, c.fail(p, "stress", nil, err.Error()))
			continue
		}
		cores := maxInt(c.cfg.Matrix.Cores)
		work, lowered, err := c.lower(m, "auto", cores, 0)
		if err != nil {
			st.Failures = append(st.Failures, c.fail(p, "stress", nil, err.Error()))
			continue
		}
		if !lowered {
			st.NoLowering++
			continue
		}
		st.Lowered++
		execCfg := func(seq bool) interptest.Config {
			return interptest.Config{SeqDispatch: seq, DispatchWorkers: cores}
		}
		base, err := interptest.RunModule(work, interp.EngineCompiled, execCfg(true))
		if err != nil || base.Err != nil {
			st.Failures = append(st.Failures, c.fail(p, "stress", nil, fmt.Sprintf("sequential baseline failed: %v / %v", err, base.Err)))
			continue
		}
		var (
			mu       sync.Mutex
			problems []string
		)
		gerr := guard(fmt.Sprintf("stress seed=%d goroutines=%d rounds=%d", seed, goroutines, rounds),
			c.cfg.Timeout*2, func() error {
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					g := g
					wg.Add(1)
					go func() {
						defer wg.Done()
						eng := interp.EngineWalker
						if g%2 == 0 {
							eng = interp.EngineCompiled
						}
						for r := 0; r < rounds; r++ {
							res, err := interptest.RunModule(work, eng, execCfg(false))
							if err != nil {
								mu.Lock()
								problems = append(problems, err.Error())
								mu.Unlock()
								return
							}
							if diffs := interptest.Compare("seq-baseline", base, fmt.Sprintf("concurrent-par[g%d,r%d,%s]", g, r, eng), res); len(diffs) > 0 {
								mu.Lock()
								problems = append(problems, strings.Join(diffs, "; "))
								mu.Unlock()
								return
							}
						}
					}()
				}
				wg.Wait()
				return nil
			})
		st.Executions += goroutines * rounds
		if gerr != nil {
			st.Failures = append(st.Failures, c.fail(p, "stress", nil, gerr.Error()))
			continue
		}
		if len(problems) > 0 {
			st.Failures = append(st.Failures, c.fail(p, "stress", nil,
				"concurrent dispatches diverged from the sequential baseline: "+strings.Join(problems, " | ")))
		}
	}
	return st
}

// errInjectedFault is the fault-injection leg's worker poison: a queue
// push that fails on its first call, simulating a worker dying mid-
// pipeline. The abort must propagate deterministically — every parked
// worker woken, the dispatch barrier reached, the root cause surfaced —
// instead of deadlocking or panicking.
var errInjectedFault = errors.New("fuzz: injected worker fault")

// Faults is the fault-injection leg. For each seed it picks the first
// technique that lowers the program, then drives two failure modes
// through both engines:
//
//   - MaxSteps exhaustion mid-pipeline: the run is capped at 3/4 of the
//     lowering's own step count, so the budget runs out while dispatched
//     workers are live. Every run must terminate with ErrStepLimit, and
//     the two engines must agree byte-for-byte on the capped sequential
//     run (the compiled tier's step accounting contract holds at budget
//     boundaries).
//
//   - Aborted workers: the queue-push extern is replaced with one that
//     fails immediately, so the first communicating worker dies. Every
//     run must terminate with an error naming the injected fault (or
//     the abort it caused) — a hang here is a teardown deadlock, the
//     exact bug class the abort protocol exists to prevent.
func (c *Campaign) Faults(seeds []int64) Stats {
	var st Stats
	for _, seed := range seeds {
		p := Generate(seed, c.cfg.Gen)
		st.Programs++
		m, err := p.Compile()
		if err != nil {
			st.Failures = append(st.Failures, c.fail(p, "faults", nil, err.Error()))
			continue
		}
		var work *ir.Module
		var tech string
		for _, t := range []string{"dswp", "helix", "auto", "doall"} {
			w, lowered, err := c.lower(m, t, 2, 0)
			if err == nil && lowered {
				work, tech = w, t
				break
			}
		}
		if work == nil {
			st.NoLowering++
			continue
		}
		st.Lowered++
		cell := Cell{Technique: tech, Cores: 2, QueueCap: 0}

		clean, err := interptest.RunModule(work, interp.EngineCompiled, interptest.Config{SeqDispatch: true, DispatchWorkers: 2})
		if err != nil || clean.Err != nil {
			st.Failures = append(st.Failures, c.fail(p, "faults", &cell, fmt.Sprintf("clean run failed: %v / %v", err, clean.Err)))
			continue
		}

		// Leg (a): step-budget exhaustion mid-pipeline.
		cap64 := clean.Steps * 3 / 4
		if cap64 < 1 {
			cap64 = 1
		}
		capped := map[bool]map[interp.Engine]interptest.Result{true: {}, false: {}}
		failed := false
		for _, seq := range []bool{true, false} {
			for _, eng := range []interp.Engine{interp.EngineWalker, interp.EngineCompiled} {
				cfg := interptest.Config{SeqDispatch: seq, DispatchWorkers: 2, MaxSteps: cap64}
				var r interptest.Result
				op := fmt.Sprintf("step-exhaustion %s engine=%s seq=%v", cell, eng, seq)
				gerr := guard(op, c.cfg.Timeout, func() error {
					var err error
					r, err = interptest.RunModule(work, eng, cfg)
					return err
				})
				st.Executions++
				if gerr != nil {
					st.Failures = append(st.Failures, c.fail(p, "faults", &cell, gerr.Error()))
					failed = true
					break
				}
				if !errors.Is(r.Err, interp.ErrStepLimit) {
					st.Failures = append(st.Failures, c.fail(p, "faults", &cell,
						fmt.Sprintf("%s: want ErrStepLimit, got %v", op, r.Err)))
					failed = true
					break
				}
				capped[seq][eng] = r
			}
			if failed {
				break
			}
		}
		if failed {
			continue
		}
		if diffs := interptest.Compare("walker", capped[true][interp.EngineWalker], "compiled", capped[true][interp.EngineCompiled]); len(diffs) > 0 {
			st.Failures = append(st.Failures, c.fail(p, "faults", &cell,
				"engines disagree on the step-capped sequential run: "+strings.Join(diffs, "; ")))
			continue
		}

		// Leg (b): aborted worker — only meaningful when the lowering
		// actually communicates.
		if clean.Comm[1] == 0 { // no queue pushes
			continue
		}
		poison := map[string]interp.Extern{
			interp.ExternQueuePush: func(it *interp.Interp, args []uint64) (uint64, error) {
				return 0, errInjectedFault
			},
		}
		for _, seq := range []bool{true, false} {
			for _, eng := range []interp.Engine{interp.EngineWalker, interp.EngineCompiled} {
				cfg := interptest.Config{SeqDispatch: seq, DispatchWorkers: 2, Externs: poison}
				var r interptest.Result
				op := fmt.Sprintf("worker-abort %s engine=%s seq=%v", cell, eng, seq)
				gerr := guard(op, c.cfg.Timeout, func() error {
					var err error
					r, err = interptest.RunModule(work, eng, cfg)
					return err
				})
				st.Executions++
				if gerr != nil {
					st.Failures = append(st.Failures, c.fail(p, "faults", &cell, gerr.Error()))
					break
				}
				if r.Err == nil {
					st.Failures = append(st.Failures, c.fail(p, "faults", &cell,
						fmt.Sprintf("%s: injected push fault vanished (run succeeded)", op)))
					break
				}
				if !strings.Contains(r.Err.Error(), errInjectedFault.Error()) &&
					!strings.Contains(r.Err.Error(), "abort") {
					st.Failures = append(st.Failures, c.fail(p, "faults", &cell,
						fmt.Sprintf("%s: error does not surface the injected fault: %v", op, r.Err)))
					break
				}
			}
		}
	}
	return st
}

// InjectMiscompile is the harness's own acceptance check: it seeds one
// of internal/verify's known miscompiles (the dropped token push from
// the mutation suite) into a real DSWP lowering of a generated program
// and asserts the campaign's static oracle catches it. Returns the
// reported Failure (with its reproducer written like any other) and
// whether the oracle caught the miscompile; a miss means the harness
// has lost its detection power and the caller must fail loudly.
func (c *Campaign) InjectMiscompile(maxSeeds int) (Failure, bool, error) {
	if maxSeeds <= 0 {
		maxSeeds = 50
	}
	for seed := int64(1); seed <= int64(maxSeeds); seed++ {
		p := Generate(seed, c.cfg.Gen)
		m, err := p.Compile()
		if err != nil {
			continue
		}
		work, lowered, err := c.lower(m, "dswp", 2, 0)
		if err != nil || !lowered {
			continue
		}
		if verify.Module(work, verify.TierComm).Err() != nil {
			// The unmutated lowering must be comm-clean, or the injected
			// finding would not be attributable to the mutation.
			continue
		}
		push := findTokenPush(work)
		if push == nil {
			continue
		}
		push.Parent.Remove(push)
		res := verify.Module(work, verify.TierComm)
		cell := Cell{Technique: "dswp", Cores: 2, QueueCap: 0}
		if res.Err() == nil {
			return Failure{}, false, fmt.Errorf(
				"fuzz: injected miscompile (dropped token push, seed %d) passed the comm tier undetected", seed)
		}
		reason := fmt.Sprintf("injected miscompile caught by the static comm oracle: %v", res.Err())
		f := Failure{Seed: seed, Leg: "inject", Cell: cell.String(), Reason: reason}
		f.Replay = replayCommand(p, "inject", &cell)
		f.Repro = c.writeMutatedRepro(work, p, &cell, reason)
		return f, true, nil
	}
	return Failure{}, false, fmt.Errorf("fuzz: no seed in 1..%d produced a mutable DSWP lowering", maxSeeds)
}

// writeMutatedRepro dumps an already-mutated module (the inject leg's
// reproducer is the lowered IR itself, not the source program).
func (c *Campaign) writeMutatedRepro(work *ir.Module, p *Program, cell *Cell, reason string) string {
	if c.cfg.OutDir == "" {
		return ""
	}
	if err := os.MkdirAll(c.cfg.OutDir, 0o755); err != nil {
		c.logf("cannot create reproducer dir: %v", err)
		return ""
	}
	var sb strings.Builder
	sb.WriteString("; noelle-fuzz reproducer (injected miscompile: dropped token push)\n")
	fmt.Fprintf(&sb, "; leg=inject seed=%d cell: %s\n", p.Seed, cell)
	fmt.Fprintf(&sb, "; reason: %s\n", firstLine(reason))
	fmt.Fprintf(&sb, "; replay: %s\n", replayCommand(p, "inject", cell))
	sb.WriteString(ir.Print(work))
	path := filepath.Join(c.cfg.OutDir, fmt.Sprintf("seed%d_inject_%s_c%d_q%d.nir",
		p.Seed, cell.Technique, cell.Cores, cell.QueueCap))
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		c.logf("cannot write reproducer: %v", err)
		return ""
	}
	return path
}

// findTokenPush locates the token-queue push (payload constant 1) in
// the first DSWP stage-0 function — the same site the verify mutation
// suite removes.
func findTokenPush(m *ir.Module) *ir.Instr {
	for _, f := range m.Functions {
		if f.MD.Get(verify.MDKind) != verify.KindDSWPStage || f.MD.Get(verify.MDStage) != "0" {
			continue
		}
		var found *ir.Instr
		f.Instrs(func(in *ir.Instr) bool {
			if in.Opcode != ir.OpCall {
				return true
			}
			callee := in.CalledFunction()
			if callee == nil || callee.Nam != interp.ExternQueuePush {
				return true
			}
			args := in.CallArgs()
			if len(args) != 2 {
				return true
			}
			if cst, ok := args[1].(*ir.Const); ok && cst.Int == 1 {
				found = in
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

func maxInt(xs []int) int {
	best := 2
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
