package fuzz

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMatrix parses the -matrix flag syntax:
//
//	tech=doall,dswp;cores=2,4;qcap=0,8
//
// Omitted axes keep the default matrix's values, so a reproducer can
// pin a single cell ("tech=dswp;cores=2;qcap=0") while an exploratory
// run narrows just one axis ("tech=helix").
func ParseMatrix(spec string) (Matrix, error) {
	m := DefaultMatrix()
	if strings.TrimSpace(spec) == "" {
		return m, nil
	}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return m, fmt.Errorf("fuzz: matrix field %q is not key=v1,v2", field)
		}
		vals := strings.Split(val, ",")
		switch key {
		case "tech":
			m.Techniques = nil
			for _, v := range vals {
				v = strings.TrimSpace(v)
				switch v {
				case "doall", "dswp", "helix", "auto":
					m.Techniques = append(m.Techniques, v)
				default:
					return m, fmt.Errorf("fuzz: unknown technique %q (want doall|dswp|helix|auto)", v)
				}
			}
		case "cores", "qcap":
			var ints []int
			for _, v := range vals {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n < 0 {
					return m, fmt.Errorf("fuzz: bad %s value %q", key, v)
				}
				ints = append(ints, n)
			}
			if key == "cores" {
				m.Cores = ints
			} else {
				m.QueueCaps = ints
			}
		default:
			return m, fmt.Errorf("fuzz: unknown matrix axis %q (want tech|cores|qcap)", key)
		}
	}
	if len(m.Techniques) == 0 || len(m.Cores) == 0 || len(m.QueueCaps) == 0 {
		return m, fmt.Errorf("fuzz: matrix %q leaves an axis empty", spec)
	}
	return m, nil
}
