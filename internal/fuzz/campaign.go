// Package fuzz is the differential fuzzing and adversarial campaign
// harness over the minic/IR surface. A seeded generator (gen.go) emits
// deterministic random programs whose hot loops are plausible
// DOALL/DSWP/HELIX candidates; the campaign runner sweeps every
// parallelization technique plus the auto orchestrator across a fixed
// matrix of seeds × cores × queue capacities, and judges every cell
// with the repo's full oracle stack:
//
//   - irtext round-trip: print → parse → print must be byte-identical
//     and keep the structural module fingerprint stable;
//   - engine differential: walker vs compiled tier agree on every
//     observable (interptest) for the original and every lowering;
//   - dispatch differential: the parallel execution of a lowered module
//     is byte-identical to its -seq fallback (output, exit code, Steps,
//     Cycles, memory fingerprint, comm counters);
//   - semantic preservation: the lowered module's sequential output
//     matches the original program's;
//   - static verification: every lowering must pass the comm-tier
//     protocol linter before it is allowed to execute.
//
// Any divergence, panic, verifier rejection, or deadlock (watchdog
// timeout with a goroutine dump) fails the cell; the failing program is
// minimized by block-dropping and array-shrinking and written out as a
// replayable .nir reproducer whose header names the seed and matrix
// cell. Stress, fault-injection, and miscompile-injection legs live in
// legs.go; cmd/noelle-fuzz is the CLI.
package fuzz

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"noelle/internal/core"
	"noelle/internal/interp"
	"noelle/internal/interp/interptest"
	"noelle/internal/ir"
	"noelle/internal/irtext"
	"noelle/internal/tool"

	// Link the registered custom tools (doall, dswp, helix, auto, ...)
	// into every campaign process.
	_ "noelle/internal/tools"
)

// Matrix is the fixed sweep every generated program is judged across.
// Both execution engines always run — the walker-vs-compiled diff is an
// oracle, not a knob — so the effective matrix is
// techniques × cores × queue caps × {walker, compiled}.
type Matrix struct {
	Techniques []string
	Cores      []int
	QueueCaps  []int
}

// DefaultMatrix sweeps every lowering technique plus the auto
// orchestrator across two core counts and two queue capacities (0 keeps
// each lowering's own choice; a small cap forces backpressure).
func DefaultMatrix() Matrix {
	return Matrix{
		Techniques: []string{"doall", "dswp", "helix", "auto"},
		Cores:      []int{2, 4},
		QueueCaps:  []int{0, 8},
	}
}

// Cell is one matrix coordinate for one seed.
type Cell struct {
	Technique string
	Cores     int
	QueueCap  int
}

func (cl Cell) String() string {
	return fmt.Sprintf("tech=%s cores=%d qcap=%d", cl.Technique, cl.Cores, cl.QueueCap)
}

// Config shapes a campaign.
type Config struct {
	// Gen sizes the generated programs.
	Gen GenConfig
	// Matrix is the per-seed sweep (zero value = DefaultMatrix).
	Matrix Matrix
	// MinHotness is the hot-loop threshold handed to the manager. The
	// campaign default is 0: every loop is a candidate, which maximizes
	// lowering coverage on small generated programs.
	MinHotness float64
	// Timeout is the watchdog budget per guarded operation (one
	// pipeline run or one module execution). A cell that exceeds it is
	// reported as a suspected deadlock with a full goroutine dump.
	Timeout time.Duration
	// OutDir receives minimized .nir reproducers ("" disables writing).
	OutDir string
	// Parallel runs seeds across a worker pool (<=1 = sequential).
	Parallel int
	// NoMinimize skips reproducer minimization (used by tests that
	// assert on the un-shrunk failure).
	NoMinimize bool
	// Verbose, when non-nil, receives per-seed progress lines.
	Verbose io.Writer
}

func (c Config) withDefaults() Config {
	c.Gen = c.Gen.withDefaults()
	if len(c.Matrix.Techniques) == 0 {
		c.Matrix = DefaultMatrix()
	}
	if len(c.Matrix.Cores) == 0 {
		c.Matrix.Cores = DefaultMatrix().Cores
	}
	if len(c.Matrix.QueueCaps) == 0 {
		c.Matrix.QueueCaps = []int{0}
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Failure is one oracle violation, with everything needed to replay it.
type Failure struct {
	Seed   int64
	Leg    string
	Cell   string // "" for program-level failures (round-trip, baseline)
	Reason string
	// Repro is the path of the minimized .nir reproducer ("" when no
	// OutDir is configured).
	Repro string
	// Replay is the noelle-fuzz invocation that regenerates and
	// re-judges the failing program deterministically.
	Replay string
}

func (f Failure) String() string {
	s := fmt.Sprintf("seed %d", f.Seed)
	if f.Cell != "" {
		s += " [" + f.Cell + "]"
	}
	s += ": " + firstLine(f.Reason)
	if f.Repro != "" {
		s += "\n  reproducer: " + f.Repro
	}
	if f.Replay != "" {
		s += "\n  replay: " + f.Replay
	}
	return s
}

// Stats aggregates one campaign run.
type Stats struct {
	Programs   int // generated programs judged
	Cells      int // matrix cells evaluated
	Lowered    int // cells whose technique lowered at least one loop
	NoLowering int // cells where the technique (correctly) stood down
	Executions int // differential executions performed
	Failures   []Failure
}

// Merge folds other into s.
func (s *Stats) Merge(other Stats) {
	s.Programs += other.Programs
	s.Cells += other.Cells
	s.Lowered += other.Lowered
	s.NoLowering += other.NoLowering
	s.Executions += other.Executions
	s.Failures = append(s.Failures, other.Failures...)
}

// Summary renders the one-line campaign account.
func (s Stats) Summary() string {
	return fmt.Sprintf("programs=%d cells=%d lowered=%d no-lowering=%d executions=%d failures=%d",
		s.Programs, s.Cells, s.Lowered, s.NoLowering, s.Executions, len(s.Failures))
}

// Campaign runs the oracle-gated matrix over generated programs.
type Campaign struct {
	cfg Config
}

// New builds a campaign with defaults applied.
func New(cfg Config) *Campaign { return &Campaign{cfg: cfg.withDefaults()} }

// Cells enumerates the matrix.
func (c *Campaign) Cells() []Cell {
	var cells []Cell
	for _, t := range c.cfg.Matrix.Techniques {
		for _, cores := range c.cfg.Matrix.Cores {
			for _, qc := range c.cfg.Matrix.QueueCaps {
				cells = append(cells, Cell{Technique: t, Cores: cores, QueueCap: qc})
			}
		}
	}
	return cells
}

// RunSeeds judges every seed across the full matrix, optionally across
// a worker pool, and returns the aggregated stats.
func (c *Campaign) RunSeeds(seeds []int64) Stats {
	if c.cfg.Parallel <= 1 || len(seeds) <= 1 {
		var st Stats
		for _, s := range seeds {
			st.Merge(c.RunSeed(s))
		}
		return st
	}
	var (
		mu   sync.Mutex
		st   Stats
		wg   sync.WaitGroup
		next = make(chan int64)
	)
	for w := 0; w < c.cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				one := c.RunSeed(s)
				mu.Lock()
				st.Merge(one)
				mu.Unlock()
			}
		}()
	}
	for _, s := range seeds {
		next <- s
	}
	close(next)
	wg.Wait()
	return st
}

// RunSeed judges one seed: the program-level oracles (compile,
// round-trip, engine baseline), then every matrix cell.
func (c *Campaign) RunSeed(seed int64) Stats {
	var st Stats
	p := Generate(seed, c.cfg.Gen)
	st.Programs++
	c.logf("seed %d: %d blocks (%s)", seed, len(p.ActiveBlocks()), blockKinds(p))
	if reason := c.CheckProgram(p); reason != "" {
		st.Failures = append(st.Failures, c.fail(p, "campaign", nil, reason))
		return st // the program itself is broken; cells would only echo it
	}
	for _, cell := range c.Cells() {
		cell := cell
		st.Cells++
		reason, lowered, execs := c.CheckCell(p, cell)
		st.Executions += execs
		if lowered {
			st.Lowered++
		} else if reason == "" {
			st.NoLowering++
		}
		if reason != "" {
			st.Failures = append(st.Failures, c.fail(p, "campaign", &cell, reason))
		}
	}
	return st
}

// CheckProgram runs the seed-level oracles on p and returns the first
// violation ("" when clean): the program must compile to verifier-clean
// IR, survive a print→parse→print round trip byte-identically with a
// stable structural fingerprint, and execute identically on both
// engine tiers.
func (c *Campaign) CheckProgram(p *Program) string {
	m, err := p.Compile()
	if err != nil {
		return err.Error()
	}
	if reason := RoundTrip(m); reason != "" {
		return reason
	}
	var (
		walker interptest.Result
		diffs  []string
	)
	gerr := guard("baseline execution", c.cfg.Timeout, func() error {
		var err error
		walker, _, diffs, err = interptest.TiersAgree(m, interptest.Config{})
		return err
	})
	if gerr != nil {
		return gerr.Error()
	}
	if walker.Err != nil {
		return fmt.Sprintf("original program errors: %v", walker.Err)
	}
	if len(diffs) > 0 {
		return "engine tiers disagree on the original program: " + strings.Join(diffs, "; ")
	}
	return ""
}

// RoundTrip checks the irtext round-trip property on one module: the
// printed text must re-parse, re-print byte-identically, and keep its
// structural fingerprint. The campaign asserts it for every generated
// program; a focused unit test pins it independently.
func RoundTrip(m *ir.Module) string {
	text1 := ir.Print(m)
	m2, err := irtext.Parse(text1)
	if err != nil {
		return fmt.Sprintf("printed module does not re-parse: %v", err)
	}
	if text2 := ir.Print(m2); text2 != text1 {
		return "print → parse → print is not byte-identical"
	}
	if ir.ModuleFingerprint(m) != ir.ModuleFingerprint(m2) {
		return "structural module fingerprint unstable across print → parse"
	}
	return ""
}

// CheckCell lowers p with one technique at one matrix coordinate and
// runs the full differential oracle stack on the result. It returns the
// first violation ("" when clean), whether the technique lowered
// anything, and how many differential executions ran.
func (c *Campaign) CheckCell(p *Program, cell Cell) (reason string, lowered bool, execs int) {
	m, err := p.Compile()
	if err != nil {
		return err.Error(), false, 0
	}
	base, err := interptest.RunModule(m, interp.EngineCompiled, interptest.Config{})
	if err != nil {
		return err.Error(), false, 0
	}

	work := ir.CloneModule(m)
	opts := core.DefaultOptions()
	opts.Cores = cell.Cores
	opts.MinHotness = c.cfg.MinHotness
	n := core.New(work, opts)
	topts := tool.DefaultOptions()
	topts.ExecutePlans = true
	topts.QueueCapacity = cell.QueueCap
	topts.VerifyTier = "comm"
	var perr error
	gerr := guard("pipeline "+cell.String(), c.cfg.Timeout, func() error {
		_, _, perr = tool.RunPipeline(context.Background(), n, []string{cell.Technique}, topts)
		return nil
	})
	if gerr != nil {
		return gerr.Error(), false, 0
	}
	if perr != nil {
		// Includes *verify.Error: a lowering the comm linter rejected
		// never reaches execution, and is exactly a campaign finding.
		return fmt.Sprintf("pipeline failed: %v", perr), false, 0
	}
	if ir.ModuleFingerprint(work) == ir.ModuleFingerprint(m) {
		return "", false, 0 // nothing lowered: a planning-only cell
	}
	lowered = true

	// Execute the lowering on both engines, sequential and parallel.
	type key struct {
		eng interp.Engine
		seq bool
	}
	results := map[key]interptest.Result{}
	for _, eng := range []interp.Engine{interp.EngineWalker, interp.EngineCompiled} {
		for _, seq := range []bool{true, false} {
			cfg := interptest.Config{
				SeqDispatch:     seq,
				DispatchWorkers: cell.Cores,
				QueueCap:        cell.QueueCap,
			}
			var r interptest.Result
			op := fmt.Sprintf("execution %s engine=%s seq=%v", cell, eng, seq)
			gerr := guard(op, c.cfg.Timeout, func() error {
				var err error
				r, err = interptest.RunModule(work, eng, cfg)
				return err
			})
			execs++
			if gerr != nil {
				return gerr.Error(), lowered, execs
			}
			if r.Err != nil {
				return fmt.Sprintf("%s errored: %v", op, r.Err), lowered, execs
			}
			results[key{eng, seq}] = r
		}
	}

	// Oracle 1: the lowered module preserves the original semantics.
	seqC := results[key{interp.EngineCompiled, true}]
	if seqC.Output != base.Output || seqC.Value != base.Value {
		return fmt.Sprintf("lowering changed program semantics: original (exit %d, %q), lowered -seq (exit %d, %q)",
			base.Value, base.Output, seqC.Value, seqC.Output), lowered, execs
	}
	// Oracle 2: parallel dispatch is byte-identical to the -seq
	// fallback, per engine.
	for _, eng := range []interp.Engine{interp.EngineWalker, interp.EngineCompiled} {
		if diffs := interptest.Compare("seq", results[key{eng, true}], "par", results[key{eng, false}]); len(diffs) > 0 {
			return fmt.Sprintf("engine=%s parallel diverged from -seq: %s", eng, strings.Join(diffs, "; ")), lowered, execs
		}
	}
	// Oracle 3: the engines agree on the lowering, in both modes.
	for _, seq := range []bool{true, false} {
		if diffs := interptest.Compare("walker", results[key{interp.EngineWalker, seq}], "compiled", results[key{interp.EngineCompiled, seq}]); len(diffs) > 0 {
			return fmt.Sprintf("engine tiers disagree on the lowering (seq=%v): %s", seq, strings.Join(diffs, "; ")), lowered, execs
		}
	}
	return "", lowered, execs
}

// fail minimizes the failing program, writes its reproducer, and
// returns the filled-in Failure record.
func (c *Campaign) fail(p *Program, leg string, cell *Cell, reason string) Failure {
	min := p
	if !c.cfg.NoMinimize {
		min = Minimize(p, func(q *Program) bool {
			if cell == nil {
				return c.CheckProgram(q) != ""
			}
			r, _, _ := c.CheckCell(q, *cell)
			return r != ""
		})
	}
	f := Failure{Seed: p.Seed, Leg: leg, Reason: reason}
	if cell != nil {
		f.Cell = cell.String()
	}
	f.Replay = replayCommand(min, leg, cell)
	f.Repro = c.writeRepro(min, leg, cell, reason)
	c.logf("FAILURE %s", f)
	return f
}

// writeRepro dumps the minimized program's IR as a commented .nir
// reproducer under OutDir and returns its path.
func (c *Campaign) writeRepro(p *Program, leg string, cell *Cell, reason string) string {
	if c.cfg.OutDir == "" {
		return ""
	}
	if err := os.MkdirAll(c.cfg.OutDir, 0o755); err != nil {
		c.logf("cannot create reproducer dir: %v", err)
		return ""
	}
	name := fmt.Sprintf("seed%d", p.Seed)
	if cell != nil {
		name += fmt.Sprintf("_%s_c%d_q%d", cell.Technique, cell.Cores, cell.QueueCap)
	}
	path := filepath.Join(c.cfg.OutDir, name+".nir")
	var sb strings.Builder
	sb.WriteString("; noelle-fuzz reproducer (minimized)\n")
	fmt.Fprintf(&sb, "; leg=%s seed=%d blocks=%v arrays=%d arraylen=%d active=%v\n",
		leg, p.Seed, p.Cfg.Blocks, p.Cfg.Arrays, p.Cfg.ArrayLen, p.ActiveBlocks())
	if cell != nil {
		fmt.Fprintf(&sb, "; cell: %s (engines: walker+compiled)\n", cell)
	}
	fmt.Fprintf(&sb, "; reason: %s\n", firstLine(reason))
	fmt.Fprintf(&sb, "; replay: %s\n", replayCommand(p, leg, cell))
	if m, err := p.Compile(); err == nil {
		sb.WriteString(ir.Print(m))
	} else {
		fmt.Fprintf(&sb, "; (program no longer compiles: %v)\n", err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		c.logf("cannot write reproducer: %v", err)
		return ""
	}
	return path
}

// replayCommand renders the noelle-fuzz invocation that regenerates the
// failing program from its seed and re-judges the failing coordinate.
func replayCommand(p *Program, leg string, cell *Cell) string {
	cmd := fmt.Sprintf("go run ./cmd/noelle-fuzz -leg %s -seed-base %d -seeds 1 -blocks %d -arrays %d -arraylen %d",
		leg, p.Seed, p.Cfg.Blocks, p.Cfg.Arrays, p.Cfg.ArrayLen)
	if cell != nil {
		cmd += fmt.Sprintf(" -matrix %q", fmt.Sprintf("tech=%s;cores=%d;qcap=%d", cell.Technique, cell.Cores, cell.QueueCap))
	}
	return cmd
}

func (c *Campaign) logf(format string, args ...any) {
	if c.cfg.Verbose != nil {
		fmt.Fprintf(c.cfg.Verbose, format+"\n", args...)
	}
}

func blockKinds(p *Program) string {
	var kinds []string
	for _, i := range p.ActiveBlocks() {
		kinds = append(kinds, string(p.Blocks[i].Kind))
	}
	return strings.Join(kinds, ",")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
