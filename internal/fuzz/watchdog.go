package fuzz

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"time"
)

// DeadlockError reports a guarded operation that did not finish within
// its watchdog budget. It carries a full goroutine dump so a CI failure
// names the parked operations (queue pushes, signal waits, dispatch
// barriers) instead of just timing out.
type DeadlockError struct {
	Op      string
	Timeout time.Duration
	Stacks  string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("fuzz: %s did not finish within %v (suspected deadlock); goroutine dump:\n%s",
		e.Op, e.Timeout, e.Stacks)
}

// guard runs fn under the campaign watchdog: a panic becomes an error
// carrying the panicking stack, and a hang becomes a *DeadlockError
// with a dump of every goroutine at expiry. On timeout the stuck
// goroutine is intentionally leaked (there is no way to preempt it);
// the campaign process is expected to report and exit, which is why
// each guarded operation gets a fresh goroutine rather than a pool.
func guard(op string, timeout time.Duration, fn func() error) error {
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- fmt.Errorf("fuzz: panic in %s: %v\n%s", op, r, debug.Stack())
			}
		}()
		done <- fn()
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		var b bytes.Buffer
		if p := pprof.Lookup("goroutine"); p != nil {
			_ = p.WriteTo(&b, 2)
		}
		return &DeadlockError{Op: op, Timeout: timeout, Stacks: b.String()}
	}
}
