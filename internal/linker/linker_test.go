package linker_test

import (
	"strings"
	"testing"

	"noelle/internal/interp"
	"noelle/internal/linker"
	"noelle/internal/minic"
	"noelle/internal/passes"
)

func TestCrossModuleLink(t *testing.T) {
	lib, err := minic.Compile("lib", `
int shared[4] = {10, 20, 30, 40};
int lib_sum(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + shared[i]; }
  return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", `
extern int lib_sum(int n);
int main() {
  int r = lib_sum(4);
  print_i64(r);
  return r % 256;
}`)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := linker.Link("whole", app, lib)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	passes.Optimize(whole)
	it := interp.New(whole)
	r, err := it.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r != 100 {
		t.Errorf("linked program returned %d, want 100", r)
	}
	if !strings.Contains(it.Output.String(), "100") {
		t.Errorf("output = %q", it.Output.String())
	}
}

func TestLinkRejectsDuplicates(t *testing.T) {
	a, _ := minic.Compile("a", `int f(int x) { return x; } int main() { return f(1); }`)
	b, _ := minic.Compile("b", `int f(int x) { return x + 1; }`)
	if _, err := linker.Link("w", a, b); err == nil {
		t.Error("duplicate definition of f not rejected")
	}
	c, _ := minic.Compile("c", `int g = 3;`)
	d, _ := minic.Compile("d", `int g = 4;`)
	if _, err := linker.Link("w", c, d); err == nil {
		t.Error("duplicate global g not rejected")
	}
}

func TestLinkPreservesMetadata(t *testing.T) {
	a, _ := minic.Compile("a", `int main() { return 0; }`)
	a.SetMD("noelle.custom", "kept")
	a.LinkOptions = append(a.LinkOptions, "-lm")
	b, _ := minic.Compile("b", `int helper(int x) { return x; }`)
	whole, err := linker.Link("w", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if whole.MD.Get("noelle.custom") != "kept" {
		t.Error("module metadata lost")
	}
	if len(whole.LinkOptions) != 1 || whole.LinkOptions[0] != "-lm" {
		t.Errorf("link options = %v", whole.LinkOptions)
	}
}
