// Package linker merges IR modules into one whole-program module, the job
// of noelle-whole-ir and noelle-linker. Function declarations resolve to
// definitions from other modules, duplicate definitions are an error, and
// NOELLE metadata (link options, profiles, embedded PDGs) is carried over.
package linker

import (
	"fmt"

	"noelle/internal/ir"
)

// Link merges the given modules into a fresh module named name.
func Link(name string, mods ...*ir.Module) (*ir.Module, error) {
	out := ir.NewModule(name)

	// Pass 1: create globals and function shells, detecting clashes.
	gmap := map[*ir.Global]*ir.Global{}
	fmap := map[*ir.Function]*ir.Function{}
	defined := map[string]bool{} // names with a body among the inputs
	for _, m := range mods {
		out.LinkOptions = append(out.LinkOptions, m.LinkOptions...)
		for k, v := range m.MD {
			out.SetMD(k, v)
		}
		for _, g := range m.Globals {
			if exist := out.GlobalByName(g.Nam); exist != nil {
				return nil, fmt.Errorf("link: duplicate global @%s", g.Nam)
			}
			ng := &ir.Global{
				Nam:   g.Nam,
				Elem:  g.Elem,
				Init:  append([]int64(nil), g.Init...),
				FInit: append([]float64(nil), g.FInit...),
				MD:    g.MD.Clone(),
			}
			out.AddGlobal(ng)
			gmap[g] = ng
		}
		for _, f := range m.Functions {
			if !f.IsDeclaration() {
				if defined[f.Nam] {
					return nil, fmt.Errorf("link: duplicate definition of @%s", f.Nam)
				}
				defined[f.Nam] = true
			}
			exist := out.FunctionByName(f.Nam)
			switch {
			case exist == nil:
				nf := ir.NewFunction(f.Nam, f.Sig)
				for i, p := range f.Params {
					nf.Params[i].Nam = p.Nam
				}
				nf.MD = f.MD.Clone()
				out.AddFunction(nf)
				fmap[f] = nf
			case !exist.Sig.Equal(f.Sig):
				return nil, fmt.Errorf("link: @%s declared with conflicting signatures", f.Nam)
			default:
				fmap[f] = exist // declarations resolve to the single definition
			}
		}
	}

	// Pass 2: clone bodies with cross-module resolution.
	for _, m := range mods {
		for _, f := range m.Functions {
			if f.IsDeclaration() {
				continue
			}
			dst := fmap[f]
			if !dst.IsDeclaration() && dst.Nam == f.Nam && len(dst.Blocks) > 0 && dst != fmap[f] {
				continue
			}
			cloneLinkedBody(f, dst, m, out, gmap, fmap)
		}
	}
	if err := ir.Verify(out); err != nil {
		return nil, fmt.Errorf("link: result malformed: %w", err)
	}
	return out, nil
}

func cloneLinkedBody(src, dst *ir.Function, srcMod, outMod *ir.Module, gmap map[*ir.Global]*ir.Global, fmap map[*ir.Function]*ir.Function) {
	bmap := map[*ir.Block]*ir.Block{}
	for _, b := range src.Blocks {
		nb := dst.NewBlock(b.Nam)
		nb.MD = b.MD.Clone()
		bmap[b] = nb
	}
	imap := map[*ir.Instr]*ir.Instr{}
	for _, b := range src.Blocks {
		for _, in := range b.Instrs {
			ni := &ir.Instr{
				Opcode:      in.Opcode,
				Ty:          in.Ty,
				Nam:         in.Nam,
				AllocaElem:  in.AllocaElem,
				AllocaCount: in.AllocaCount,
				Parent:      bmap[b],
				ID:          -1,
				MD:          in.MD.Clone(),
			}
			bmap[b].Instrs = append(bmap[b].Instrs, ni)
			imap[in] = ni
		}
	}
	remap := func(v ir.Value) ir.Value {
		switch x := v.(type) {
		case *ir.Instr:
			return imap[x]
		case *ir.Param:
			return dst.Params[x.Index]
		case *ir.Global:
			if ng, ok := gmap[x]; ok {
				return ng
			}
			return outMod.GlobalByName(x.Nam)
		case *ir.Function:
			if nf, ok := fmap[x]; ok {
				return nf
			}
			return outMod.FunctionByName(x.Nam)
		default:
			return v
		}
	}
	for _, b := range src.Blocks {
		for _, in := range b.Instrs {
			ni := imap[in]
			for _, op := range in.Ops {
				ni.Ops = append(ni.Ops, remap(op))
			}
			for _, tb := range in.Blocks {
				ni.Blocks = append(ni.Blocks, bmap[tb])
			}
		}
	}
}
