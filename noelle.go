// Package noelle is the public facade of the NOELLE compilation layer: a
// Go reproduction of "NOELLE Offers Empowering LLVM Extensions" (CGO
// 2022). It re-exports the manager, the tool registry, and the entry
// points a custom tool needs; the implementation lives under internal/
// (see DESIGN.md for the system inventory and README.md for the
// architecture overview).
//
// A custom tool follows the paper's pattern — load the layer, then pull
// abstractions on demand:
//
//	m, _ := noelle.CompileC("prog", source) // or parse textual IR
//	n := noelle.Load(m, noelle.DefaultOptions())
//	pdg := n.FunctionPDG(m.FunctionByName("main"))
//	for _, ls := range n.HotLoops() {
//	    l := n.Loop(ls) // LS + LDG + aSCCDAG + IV + INV + RD
//	    ...
//	}
//
// The bundled custom tools (licm, dead, doall, helix, dswp, carat, coos,
// prvj, timesq, perspective) register themselves behind the uniform Tool
// interface; resolve them by name or run a multi-stage pipeline that
// precomputes function PDGs in parallel and invalidates cached
// abstractions between transforming stages:
//
//	for _, t := range noelle.Tools() {
//	    fmt.Println(t.Name(), "-", t.Describe())
//	}
//	reports, err := noelle.RunPipeline(ctx, n, []string{"licm", "dead"},
//	    noelle.DefaultToolOptions())
//
// The manager is safe for concurrent use; n.PrecomputePDGs(ctx, workers)
// materializes every function PDG across a worker pool up front.
//
// Setting Options.CacheDir points the manager at a persistent
// content-addressed abstraction store (internal/abscache): function PDGs
// are fingerprinted structurally, looked up on disk before being built,
// and persisted after a cold build, so a second load of the same program
// reconstructs every PDG without re-running the alias analyses. Open a
// store explicitly with OpenStore and attach it with WithStore to share
// one across managers; inspect it with the noelle-cache CLI.
package noelle

import (
	"context"

	"noelle/internal/abscache"
	"noelle/internal/core"
	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/irtext"
	"noelle/internal/minic"
	"noelle/internal/passes"
	"noelle/internal/tool"

	// Link the bundled custom tools into the facade's registry.
	_ "noelle/internal/tools"
)

// Noelle is the demand-driven abstraction manager (the paper's
// noelle-load layer).
type Noelle = core.Noelle

// Options configures the manager.
type Options = core.Options

// Module is a whole-program IR module.
type Module = ir.Module

// Tool is the uniform interface every registered custom tool implements.
type Tool = tool.Tool

// ToolOptions carries the per-invocation knobs shared by custom tools.
type ToolOptions = tool.Options

// Report is the uniform result a custom tool returns: a summary line,
// structured metrics, and the abstractions the tool requested.
type Report = tool.Report

// DefaultOptions mirrors the paper's evaluation setup (12 cores, 5%
// hotness threshold).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultToolOptions mirrors the noelle-load flag defaults.
func DefaultToolOptions() ToolOptions { return tool.DefaultOptions() }

// Store is the persistent content-addressed abstraction store
// (internal/abscache): function PDGs and loop summaries keyed by
// structural fingerprint, behind an in-memory LRU.
type Store = abscache.Store

// Load loads the NOELLE layer over a module without computing anything;
// abstractions materialize on first request. Set opts.CacheDir to load
// warm from (and populate) a persistent abstraction store.
func Load(m *Module, opts Options) *Noelle { return core.New(m, opts) }

// OpenStore opens (creating if needed) the persistent abstraction store
// rooted at dir for module m.
func OpenStore(dir string, m *Module) (*Store, error) { return abscache.Open(dir, m, 0) }

// WithStore attaches an already-open persistent store to the manager and
// returns the manager (fluent form of n.SetStore).
func WithStore(n *Noelle, s *Store) *Noelle {
	n.SetStore(s)
	return n
}

// Tools returns every registered custom tool, sorted by name.
func Tools() []Tool { return tool.Tools() }

// LookupTool resolves a registered custom tool by name.
func LookupTool(name string) (Tool, bool) { return tool.Lookup(name) }

// RunPipeline runs the named tools in sequence over one manager,
// precomputing function PDGs in parallel first (when
// opts.PrecomputeWorkers > 0), statically verifying the module at
// opts.VerifyTier after every transforming stage, and invalidating
// cached abstractions after each of those stages.
func RunPipeline(ctx context.Context, n *Noelle, names []string, opts ToolOptions) ([]Report, error) {
	reports, _, err := tool.RunPipeline(ctx, n, names, opts)
	return reports, err
}

// CompileC compiles mini-C source text to optimized IR (the substrate's
// clang -O2 equivalent).
func CompileC(name, src string) (*Module, error) {
	m, err := minic.Compile(name, src)
	if err != nil {
		return nil, err
	}
	passes.Optimize(m)
	return m, nil
}

// ParseIR parses a textual IR module (the .nir format the noelle-* tools
// exchange).
func ParseIR(src string) (*Module, error) { return irtext.Parse(src) }

// PrintIR renders a module in the textual IR format.
func PrintIR(m *Module) string { return ir.Print(m) }

// Run executes a module's @main under the interpreter (on its default
// execution tier — see internal/interp: the compiled fast path, or the
// walker when NOELLE_ENGINE=walker) and
// returns its exit code and output. Modules produced by the
// parallelizing tools contain noelle_dispatch calls whose task workers
// run concurrently on real cores; use RunSeq to force the sequential
// debugging fallback (both produce byte-identical output for
// correctly-parallelized modules).
func Run(m *Module) (int64, string, error) {
	it := interp.New(m)
	code, err := it.Run()
	return code, it.Output.String(), err
}

// RunSeq executes a module like Run but with sequential dispatch: task
// workers of parallelized loops run one after another in worker order
// (the interpreter's -seq fallback).
func RunSeq(m *Module) (int64, string, error) {
	it := interp.New(m)
	it.SeqDispatch = true
	code, err := it.Run()
	return code, it.Output.String(), err
}
