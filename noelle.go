// Package noelle is the public facade of the NOELLE compilation layer: a
// Go reproduction of "NOELLE Offers Empowering LLVM Extensions" (CGO
// 2022). It re-exports the manager and the entry points a custom tool
// needs; the implementation lives under internal/ (see DESIGN.md for the
// system inventory and README.md for the architecture overview).
//
// A custom tool follows the paper's pattern:
//
//	m, _ := noelle.CompileC("prog", source) // or parse textual IR
//	n := noelle.Load(m, noelle.DefaultOptions())
//	pdg := n.FunctionPDG(m.FunctionByName("main"))
//	for _, ls := range n.HotLoops() {
//	    l := n.Loop(ls) // LS + LDG + aSCCDAG + IV + INV + RD
//	    ...
//	}
package noelle

import (
	"noelle/internal/core"
	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/irtext"
	"noelle/internal/minic"
	"noelle/internal/passes"
)

// Noelle is the demand-driven abstraction manager (the paper's
// noelle-load layer).
type Noelle = core.Noelle

// Options configures the manager.
type Options = core.Options

// Module is a whole-program IR module.
type Module = ir.Module

// DefaultOptions mirrors the paper's evaluation setup (12 cores, 5%
// hotness threshold).
func DefaultOptions() Options { return core.DefaultOptions() }

// Load loads the NOELLE layer over a module without computing anything;
// abstractions materialize on first request.
func Load(m *Module, opts Options) *Noelle { return core.New(m, opts) }

// CompileC compiles mini-C source text to optimized IR (the substrate's
// clang -O2 equivalent).
func CompileC(name, src string) (*Module, error) {
	m, err := minic.Compile(name, src)
	if err != nil {
		return nil, err
	}
	passes.Optimize(m)
	return m, nil
}

// ParseIR parses a textual IR module (the .nir format the noelle-* tools
// exchange).
func ParseIR(src string) (*Module, error) { return irtext.Parse(src) }

// PrintIR renders a module in the textual IR format.
func PrintIR(m *Module) string { return ir.Print(m) }

// Run executes a module's @main under the reference interpreter and
// returns its exit code and output.
func Run(m *Module) (int64, string, error) {
	it := interp.New(m)
	code, err := it.Run()
	return code, it.Output.String(), err
}
