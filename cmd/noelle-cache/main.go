// noelle-cache inspects and maintains the persistent abstraction store
// (internal/abscache) that noelle-load populates via -cache-dir — the
// NOELLE analogue of rockyardkv's ldb/sstdump inspection tools.
//
// Usage: noelle-cache -dir DIR <command>
//
//	stats      store-wide totals: modules, records, bytes, and the
//	           hit/miss/put counters sessions fold into the stats file
//	           (last.* describes the most recent session — a fully warm
//	           run shows last.misses=0); -json renders the same data
//	           through the abscache.RootStats codec the noelle-serve
//	           stats endpoint also speaks
//	ls         every module directory with its indexed functions
//	dump FN    decode function FN's record: edges (positional, with the
//	           pdg flag encoding) and per-loop abstraction summaries
//	gc         delete corrupt records, records orphaned by
//	           re-fingerprinting, and leftover temp files
//	clear      delete every record, index and counter under the root
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"noelle/internal/abscache"
)

func main() {
	dir := flag.String("dir", "", "abstraction store root (the noelle-load -cache-dir value)")
	jsonOut := flag.Bool("json", false, "render stats as JSON (the abscache.RootStats codec the noelle-serve stats endpoint also speaks)")
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		usage()
	}
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "stats":
		if *jsonOut {
			err = statsJSON(*dir)
		} else {
			err = stats(*dir)
		}
	case "ls":
		err = ls(*dir)
	case "dump":
		if flag.NArg() != 2 {
			usage()
		}
		err = dump(*dir, flag.Arg(1))
	case "gc":
		err = gc(*dir)
	case "clear":
		err = abscache.Clear(*dir)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: noelle-cache -dir DIR [-json] <stats|ls|dump FN|gc|clear>")
	os.Exit(2)
}

// statsJSON renders the store root through the shared RootStats codec.
func statsJSON(dir string) error {
	rs, err := abscache.CollectRootStats(dir)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func stats(dir string) error {
	mods, err := abscache.ScanRoot(dir)
	if err != nil {
		return err
	}
	records, indexed := 0, 0
	var bytes int64
	for _, mi := range mods {
		records += mi.Records
		bytes += mi.Bytes
		indexed += len(mi.Entries)
	}
	fmt.Printf("store %s: %d modules, %d records (%d indexed), %d bytes\n",
		dir, len(mods), records, indexed, bytes)
	counters, _ := abscache.ReadStatsFile(dir)
	if len(counters) == 0 {
		fmt.Println("no session counters recorded yet")
		return nil
	}
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, counters[k])
	}
	return nil
}

func ls(dir string) error {
	mods, err := abscache.ScanRoot(dir)
	if err != nil {
		return err
	}
	for _, mi := range mods {
		fmt.Printf("module %s: %d records, %d bytes\n", mi.Key, mi.Records, mi.Bytes)
		for _, e := range mi.Entries {
			fmt.Printf("  %-24s %s  instrs=%d edges=%d loops=%d\n",
				"@"+e.Name, e.Fingerprint[:16], e.Instrs, e.Edges, e.Loops)
		}
	}
	return nil
}

func dump(dir, fn string) error {
	rec, modKey, err := abscache.FindRecord(dir, fn)
	if err != nil {
		return err
	}
	fmt.Printf("@%s (module %s, fingerprint %s)\n", rec.FuncName, modKey, rec.Fingerprint.Short())
	fmt.Printf("instrs=%d edges=%d loops=%d\n", rec.NumInstrs, len(rec.Edges), len(rec.Loops))
	for _, e := range rec.Edges {
		fmt.Printf("  %d>%d:%s\n", e.From, e.To, e.Flags)
	}
	for _, l := range rec.Loops {
		fmt.Printf("  %s\n", l)
	}
	return nil
}

func gc(dir string) error {
	res, err := abscache.GC(dir)
	if err != nil {
		return err
	}
	fmt.Printf("gc: removed %d corrupt, %d orphaned, %d temp files\n", res.Corrupt, res.Orphaned, res.Temp)
	return nil
}
