// noelle-linker links IR files while preserving the semantics of
// NOELLE-generated metadata (paper Table 2).
//
// Usage: noelle-linker -o out.nir a.nir b.nir ...
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/ir"
	"noelle/internal/linker"
	"noelle/internal/toolio"
)

func main() {
	out := flag.String("o", "-", "output IR file")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-linker -o out.nir a.nir b.nir ...")
		os.Exit(2)
	}
	var mods []*ir.Module
	for _, path := range flag.Args() {
		m, err := toolio.ReadModule(path)
		if err != nil {
			toolio.Fatal(err)
		}
		mods = append(mods, m)
	}
	whole, err := linker.Link("linked", mods...)
	if err != nil {
		toolio.Fatal(err)
	}
	whole.AssignIDs()
	if err := toolio.WriteModule(whole, *out); err != nil {
		toolio.Fatal(err)
	}
}
