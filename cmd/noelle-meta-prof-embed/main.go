// noelle-meta-prof-embed profiles the program on its training input and
// embeds the result as metadata inside the IR file (paper Table 2), so
// later tools can query hotness without re-running.
//
// Usage: noelle-meta-prof-embed -o out.nir whole.nir
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/profiler"
	"noelle/internal/toolio"
)

func main() {
	out := flag.String("o", "-", "output IR file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-meta-prof-embed -o out.nir whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	prof, err := profiler.Collect(m)
	if err != nil {
		toolio.Fatal(err)
	}
	prof.Embed()
	if err := toolio.WriteModule(m, *out); err != nil {
		toolio.Fatal(err)
	}
}
