// noelle-serve is the NOELLE compile service: a long-running daemon
// that accepts concurrent analyze/transform/execute requests over a
// length-prefixed protocol (internal/serve) and answers them from one
// warm process. Modules are kept resident as sessions keyed by
// structural fingerprint, identical in-flight requests coalesce, the
// persistent abstraction stores under -cache-dir are shared by every
// client, and a bounded worker pool sheds load with a retryable
// "saturated" status instead of queueing without bound.
//
// Usage: noelle-serve -listen unix:/tmp/noelle.sock [-cache-dir DIR]
//
// The daemon drains gracefully on SIGINT/SIGTERM or a protocol shutdown
// request: queued and running requests finish and are answered, stores
// fold their counters to disk, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"noelle/internal/obs"
	"noelle/internal/serve"

	// Link every registered custom tool into the daemon.
	_ "noelle/internal/tools"
)

func main() {
	listen := flag.String("listen", "unix:/tmp/noelle-serve.sock", "listen address (unix:PATH or tcp:HOST:PORT)")
	cacheDir := flag.String("cache-dir", "", "persistent abstraction store root shared by all sessions (empty: memory-only)")
	workers := flag.Int("workers", runtime.NumCPU(), "execution pool size")
	queue := flag.Int("queue", 64, "request queue depth before saturated fast-fail")
	sessionCap := flag.Int("sessions", 16, "max resident warm module sessions (LRU beyond)")
	metrics := flag.Bool("metrics", false, "dump the service metrics registry to stderr on shutdown")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max graceful drain wait before cancelling in-flight pipelines")
	flag.Parse()

	network, target := serve.SplitAddr(*listen)
	if network == "unix" {
		// A stale socket from a crashed daemon would fail the bind.
		os.Remove(target)
	}
	ln, err := net.Listen(network, target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	srv := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		MaxSessions: *sessionCap,
		CacheDir:    *cacheDir,
		Registry:    reg,
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "noelle-serve: draining")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "noelle-serve: listening on %s (%d workers, queue %d, %d sessions)\n",
		*listen, *workers, *queue, *sessionCap)
	err = srv.Serve(ln)
	if network == "unix" {
		os.Remove(target)
	}
	if *metrics {
		fmt.Fprint(os.Stderr, reg.Format())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
