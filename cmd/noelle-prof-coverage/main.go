// noelle-prof-coverage runs the program under the IR interpreter on its
// training input and reports coverage statistics (paper Table 2). Use
// noelle-meta-prof-embed to persist the profile into the IR file.
//
// Usage: noelle-prof-coverage whole.nir
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/analysis"
	"noelle/internal/profiler"
	"noelle/internal/toolio"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-prof-coverage whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	prof, err := profiler.Collect(m)
	if err != nil {
		toolio.Fatal(err)
	}
	fmt.Printf("total cycles: %d\n", prof.TotalCycles)
	for _, f := range m.Functions {
		if f.IsDeclaration() || prof.CallCount[f] == 0 {
			continue
		}
		fmt.Printf("func @%-24s calls=%-8d self-cycles=%d\n", f.Nam, prof.CallCount[f], prof.FunctionCycles(f))
		li := analysis.NewLoopInfo(f)
		for _, nat := range li.Loops {
			st := prof.LoopStatsFor(nat)
			fmt.Printf("  loop %-20s iters=%-8d invocations=%-6d avg=%.1f hotness=%.1f%%\n",
				nat.Header.Nam, st.Iterations, st.Invocations, st.AvgIterations(), 100*st.Hotness)
		}
	}
}
