// noelle-fuzz is the differential fuzzing and adversarial campaign
// driver over the minic/IR surface. It generates seeded, deterministic
// random programs whose hot loops are plausible DOALL/DSWP/HELIX
// candidates, sweeps every parallelization technique plus the auto
// orchestrator across a matrix of cores × queue capacities, and judges
// every cell with the repo's full oracle stack (irtext round-trip,
// walker-vs-compiled engine differential, parallel-vs-seq dispatch
// byte-identity, semantic preservation, comm-tier static verification).
// Any divergence, panic, verifier rejection, or watchdog-detected
// deadlock is reported with a replayable seed and a minimized .nir
// reproducer.
//
// Legs:
//
//	campaign  the full matrix sweep (default)
//	stress    concurrent dispatches over one shared lowering, both
//	          engines at once (run under -race)
//	faults    step-budget exhaustion mid-pipeline and aborted-worker
//	          injection; every run must terminate with the right error
//	inject    seeds a known miscompile (dropped token push) into a real
//	          DSWP lowering and requires the oracle stack to catch it;
//	          exits 0 only if the miscompile is caught
//	all       campaign + stress + faults + inject
//
// Usage: noelle-fuzz [-leg L] [-seeds N] [-seed-base S] [-duration D]
//
//	[-matrix "tech=...;cores=...;qcap=..."] [-blocks N] [-arrays N]
//	[-arraylen N] [-hot H] [-timeout D] [-out DIR] [-parallel N] [-v]
//
// The exit status is 0 only when every leg ran clean (for the inject
// leg: only when the injected miscompile was caught).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"noelle/internal/fuzz"
)

func main() {
	leg := flag.String("leg", "campaign", "campaign|stress|faults|inject|all")
	seeds := flag.Int("seeds", 50, "number of seeds to judge (per leg)")
	seedBase := flag.Int64("seed-base", 1, "first seed (campaign seeds are seed-base..seed-base+seeds-1)")
	duration := flag.Duration("duration", 0, "keep generating fresh seeds until this budget elapses (overrides -seeds)")
	matrixSpec := flag.String("matrix", "", `matrix spec, e.g. "tech=doall,dswp;cores=2,4;qcap=0,8" (empty = default)`)
	blocks := flag.Int("blocks", 0, "loop blocks per generated program (0 = generator default)")
	arrays := flag.Int("arrays", 0, "global arrays per generated program (0 = generator default)")
	arrayLen := flag.Int("arraylen", 0, "array length / trip count scale (0 = generator default)")
	hot := flag.Float64("hot", 0, "MinHotness threshold handed to the manager (0 = every loop is a candidate)")
	timeout := flag.Duration("timeout", 30*time.Second, "watchdog budget per pipeline run or execution")
	out := flag.String("out", "fuzz-failures", "directory for minimized .nir reproducers")
	parallel := flag.Int("parallel", 1, "seeds judged concurrently (campaign leg)")
	goroutines := flag.Int("stress-goroutines", 6, "concurrent dispatchers per seed (stress leg)")
	verbose := flag.Bool("v", false, "per-seed progress on stderr")
	flag.Parse()

	matrix, err := fuzz.ParseMatrix(*matrixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	cfg := fuzz.Config{
		Gen:        fuzz.GenConfig{Blocks: *blocks, Arrays: *arrays, ArrayLen: *arrayLen},
		Matrix:     matrix,
		MinHotness: *hot,
		Timeout:    *timeout,
		OutDir:     *out,
		Parallel:   *parallel,
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	c := fuzz.New(cfg)

	runLegs := map[string]bool{}
	switch *leg {
	case "campaign", "stress", "faults", "inject":
		runLegs[*leg] = true
	case "all":
		runLegs["campaign"], runLegs["stress"], runLegs["faults"], runLegs["inject"] = true, true, true, true
	default:
		fmt.Fprintf(os.Stderr, "error: unknown leg %q (want campaign|stress|faults|inject|all)\n", *leg)
		os.Exit(2)
	}

	failed := false
	report := func(name string, st fuzz.Stats) {
		fmt.Printf("%s: %s\n", name, st.Summary())
		for _, f := range st.Failures {
			fmt.Printf("%s FAILURE: %s\n", name, f)
		}
		if len(st.Failures) > 0 {
			failed = true
		}
	}

	// With -duration the seed stream is open-ended: batches of seeds are
	// judged until the budget elapses, so longer budgets simply explore
	// more of the (deterministic, replayable) seed space.
	seedBatches := func() func() []int64 {
		next := *seedBase
		if *duration <= 0 {
			done := false
			return func() []int64 {
				if done {
					return nil
				}
				done = true
				return seedRange(next, *seeds)
			}
		}
		deadline := time.Now().Add(*duration)
		const batch = 10
		return func() []int64 {
			if !time.Now().Before(deadline) {
				return nil
			}
			s := seedRange(next, batch)
			next += batch
			return s
		}
	}

	if runLegs["campaign"] {
		var st fuzz.Stats
		for nextBatch := seedBatches(); ; {
			batch := nextBatch()
			if batch == nil {
				break
			}
			st.Merge(c.RunSeeds(batch))
		}
		report("campaign", st)
	}
	if runLegs["stress"] {
		var st fuzz.Stats
		for nextBatch := seedBatches(); ; {
			batch := nextBatch()
			if batch == nil {
				break
			}
			st.Merge(c.Stress(batch, *goroutines, 2))
		}
		report("stress", st)
	}
	if runLegs["faults"] {
		var st fuzz.Stats
		for nextBatch := seedBatches(); ; {
			batch := nextBatch()
			if batch == nil {
				break
			}
			st.Merge(c.Faults(batch))
		}
		report("faults", st)
	}
	if runLegs["inject"] {
		f, caught, err := c.InjectMiscompile(*seeds)
		switch {
		case err != nil:
			fmt.Printf("inject: ERROR %v\n", err)
			failed = true
		case caught:
			fmt.Printf("inject: caught as designed — %s\n", f)
		default:
			fmt.Println("inject: MISSED — the oracle stack no longer detects a dropped token push")
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

func seedRange(base int64, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = base + int64(i)
	}
	return s
}
