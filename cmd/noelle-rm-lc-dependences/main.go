// noelle-rm-lc-dependences transforms hot loops to remove loop-carried
// data dependences (paper Table 2): memory accumulators are promoted to
// register reductions (scalar promotion through the Loop Builder), turning
// sequential-looking loops into RD-recognizable, parallelizable ones.
//
// Usage: noelle-rm-lc-dependences -o out.nir whole.nir
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/alias"
	"noelle/internal/core"
	"noelle/internal/loopbuilder"
	"noelle/internal/passes"
	"noelle/internal/toolio"
)

func main() {
	out := flag.String("o", "-", "output IR file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-rm-lc-dependences -o out.nir whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	n := core.New(m, core.DefaultOptions())
	aa := alias.NewCombined(alias.TypeBasicAA{}, alias.AndersenAA{PT: n.PointsTo()})
	promoted := 0
	for _, f := range m.Functions {
		if f.IsDeclaration() {
			continue
		}
		for _, node := range n.Forest(f).InnermostFirst() {
			promoted += loopbuilder.PromoteAccumulators(node.LS, aa)
		}
		passes.DCE(f)
	}
	fmt.Fprintf(os.Stderr, "promoted %d loop-carried memory accumulators\n", promoted)
	if err := toolio.WriteModule(m, *out); err != nil {
		toolio.Fatal(err)
	}
}
