// noelle-eval regenerates every table and figure of the paper's
// evaluation from this repository (see DESIGN.md's per-experiment index
// and EXPERIMENTS.md for the recorded results).
//
// Usage: noelle-eval [-only table1|table2|table3|table4|fig3|fig4|goviv|fig5|spec|dead|wallclock|auto]
//
// The wallclock artifact complements the simulated Figure-5 numbers with
// *measured* speedups, covering all three parallelization techniques:
// it DOALL-transforms the bundled parallel benchmark and races the
// interpreter's parallel dispatch against its -seq fallback, then lowers
// the bundled pipeline benchmark with DSWP (stages over internal/queue
// queues) and HELIX (signal-guarded iterations) and reports measured
// pipeline speedups next to the SimulateDSWP/SimulateHELIX numbers.
// -workers picks the top worker count of the sweep (and the pipeline
// core count), -wall-size the per-loop iteration count, -queue-cap the
// communication queue bound, and -seq turns every parallel leg into a
// sequential control run.
//
// The auto artifact is the headline composition: it races the auto
// orchestrator (per-loop technique selection over the machine cost
// model) against each individual technique on both bundled benchmarks —
// the orchestrator should match the best single technique on each
// without being told which benchmark favours which.
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/bench"
	"noelle/internal/eval"
	"noelle/internal/interp"
	"noelle/internal/obs"
	"noelle/internal/toolio"
)

func main() {
	only := flag.String("only", "", "emit a single artifact")
	cores := flag.Int("cores", 12, "core count for the speedup figures")
	workers := flag.Int("workers", 4, "top worker count for the wallclock artifact's sweep")
	seq := flag.Bool("seq", false, "wallclock artifact: run the parallel legs sequentially too (debugging control)")
	wallSize := flag.Int("wall-size", 0, "wallclock artifact: array length / iteration count per loop (0 = default)")
	queueCap := flag.Int("queue-cap", 0, "wallclock artifact: bound on the pipeline communication queues (0 = default)")
	engine := flag.String("engine", "", "interpreter execution tier for the measured studies: walker|compiled (default: process default, see NOELLE_ENGINE)")
	trace := flag.String("trace", "", "wallclock/auto artifacts: export the attribution runs as a Chrome trace-event JSON timeline")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the evaluation to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-run, GC-settled) to this file")
	flag.Parse()

	eng, engErr := interp.ParseEngine(*engine)
	if engErr != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", engErr)
		os.Exit(2)
	}

	stopProfiles, perr := toolio.StartProfiles(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", perr)
		os.Exit(1)
	}
	defer stopProfiles()
	var traceLegs []obs.TraceLeg

	emit := func(name string, gen func() (string, error)) {
		if *only != "" && *only != name {
			return
		}
		text, err := gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(text)
	}

	emit("table1", func() (string, error) {
		return eval.FormatInventory("Table 1: NOELLE abstractions (this repo)", eval.Table1Abstractions()), nil
	})
	emit("table2", func() (string, error) {
		return eval.FormatInventory("Table 2: NOELLE tools (this repo)", eval.Table2Tools()), nil
	})
	emit("table3", func() (string, error) {
		return eval.FormatTable3(eval.Table3CustomTools()), nil
	})
	emit("table4", func() (string, error) {
		rows, err := eval.Table4UsageMatrix()
		if err != nil {
			return "", err
		}
		return eval.FormatTable4(rows), nil
	})
	emit("fig3", func() (string, error) {
		rows, err := eval.Figure3Dependences()
		if err != nil {
			return "", err
		}
		return eval.FormatFigure3(rows), nil
	})
	emit("fig4", func() (string, error) {
		rows, err := eval.Figure4Invariants()
		if err != nil {
			return "", err
		}
		return eval.FormatFigure4(rows), nil
	})
	emit("goviv", func() (string, error) {
		g, err := eval.GoverningIVs()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("Section 4.3: governing IVs across %d loops: LLVM-style %d, NOELLE %d (paper: 11 vs 385)",
			g.Loops, g.LLVMTotal, g.NoelleTotal), nil
	})
	emit("fig5", func() (string, error) {
		rows, err := eval.Figure5Speedups([]bench.Suite{bench.PARSEC, bench.MiBench}, *cores)
		if err != nil {
			return "", err
		}
		return eval.FormatFigure5("Figure 5: PARSEC + MiBench program speedups", rows, *cores), nil
	})
	emit("spec", func() (string, error) {
		rows, err := eval.Figure5Speedups([]bench.Suite{bench.SPEC}, *cores)
		if err != nil {
			return "", err
		}
		return eval.FormatFigure5("Section 4.4: SPEC CPU2017 program speedups", rows, *cores), nil
	})
	emit("dead", func() (string, error) {
		rows, err := eval.DeadFunctionStudy()
		if err != nil {
			return "", err
		}
		return eval.FormatDeadStudy(rows), nil
	})
	// wallclock and auto are explicit-only: they are timing measurements,
	// so they are not part of the default (deterministic) artifact sweep.
	if *only == "auto" {
		rows, err := eval.AutoStudy(*wallSize, *workers, 0, *queueCap, *seq, eng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "auto: error: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(eval.FormatAutoStudy(rows, *wallSize))
		for _, r := range rows {
			if r.Trace != nil {
				traceLegs = append(traceLegs, obs.TraceLeg{
					Name: fmt.Sprintf("%s/%s", r.Benchmark, r.Technique), Tracer: r.Trace})
			}
		}
	}
	if *only == "wallclock" {
		counts := eval.WorkerSweep(*workers)
		if counts == nil {
			fmt.Fprintf(os.Stderr, "wallclock: -workers must be >= 1 (got %d)\n", *workers)
			os.Exit(2)
		}
		rows, err := eval.WallClockStudy(*wallSize, counts, 0, *seq, eng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wallclock: error: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(eval.FormatWallClock(rows, *wallSize))
		for _, r := range rows {
			if r.Trace != nil {
				traceLegs = append(traceLegs, obs.TraceLeg{
					Name: fmt.Sprintf("doall/workers=%d", r.Workers), Tracer: r.Trace})
			}
		}
		prows, err := eval.PipelineWallClockStudy(*wallSize, *workers, 0, *queueCap, *seq, eng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wallclock: pipeline error: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(eval.FormatPipelineWallClock(prows, *wallSize))
		for _, r := range prows {
			if r.Trace != nil {
				traceLegs = append(traceLegs, obs.TraceLeg{Name: r.Technique, Tracer: r.Trace})
			}
		}
	}
	if *trace != "" {
		if err := toolio.WriteTraceFile(*trace, traceLegs...); err != nil {
			fmt.Fprintf(os.Stderr, "error: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d legs)\n", *trace, len(traceLegs))
	}
}
