// noelle-meta-pdg-embed runs the (expensive) whole-program alias analyses,
// computes every function's PDG, and embeds the graphs as metadata so
// later tool invocations can reconstruct them without re-analysis (paper
// Table 2).
//
// Usage: noelle-meta-pdg-embed -o out.nir whole.nir
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/ir"
	"noelle/internal/pdg"
	"noelle/internal/toolio"
)

func main() {
	out := flag.String("o", "-", "output IR file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-meta-pdg-embed -o out.nir whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	m.AssignIDs()
	b := pdg.NewBuilder(m)
	graphs := map[*ir.Function]*pdg.Graph{}
	for _, f := range m.Functions {
		if !f.IsDeclaration() {
			graphs[f] = b.FunctionPDG(f)
		}
	}
	pdg.Embed(m, graphs)
	if err := toolio.WriteModule(m, *out); err != nil {
		toolio.Fatal(err)
	}
}
