// noelle-meta-clean strips all NOELLE-specific metadata (profiles,
// embedded PDGs) from an IR file (paper Table 2 / Figure 1).
//
// Usage: noelle-meta-clean -o out.nir whole.nir
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/pdg"
	"noelle/internal/toolio"
)

func main() {
	out := flag.String("o", "-", "output IR file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-meta-clean -o out.nir whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	pdg.Clean(m)
	if err := toolio.WriteModule(m, *out); err != nil {
		toolio.Fatal(err)
	}
}
