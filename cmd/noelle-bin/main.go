// noelle-bin produces the runnable artifact from an IR file and executes
// it (paper Table 2). The backend of this reproduction is the IR
// interpreter, so "generating the binary" means validating the module,
// honouring its embedded link options, and running it; -emit writes the
// final IR image instead of executing.
//
// Modules produced by the parallelizing tools contain noelle_dispatch
// calls; those run their task workers concurrently on real cores by
// default. -seq falls back to sequential worker-order execution (for
// debugging), and -workers caps how many workers run simultaneously.
// Pipelined modules (dswp/helix -exec-plans) also create queues and
// signals through the communication runtime; -queue-cap overrides the
// queue capacity baked into the module (backpressure only — results are
// identical at any capacity). -trace exports the run's
// dispatch/task/communication spans as a Chrome trace-event JSON
// timeline, and -metrics prints the aggregated span histograms.
// -engine selects the interpreter execution tier: "compiled" (the
// default fast path: functions lowered once to pre-bound ops) or
// "walker" (the instruction-walking reference; both tiers produce
// byte-identical output and counters).
//
// Usage: noelle-bin [-seq] [-workers N] [-queue-cap N] [-engine walker|compiled]
//
//	[-trace out.json] [-metrics] [-emit out.nir] whole.nir
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/obs"
	"noelle/internal/toolio"
)

func main() {
	emit := flag.String("emit", "", "write the executable IR image instead of running")
	seq := flag.Bool("seq", false, "run dispatched tasks sequentially (debugging fallback)")
	workers := flag.Int("workers", 0, "cap on simultaneously-running dispatch workers (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 0, "override the capacity of the module's communication queues (0 = respect the module)")
	engine := flag.String("engine", "", "interpreter execution tier: walker|compiled (default: process default, see NOELLE_ENGINE)")
	trace := flag.String("trace", "", "export the run as a Chrome trace-event JSON timeline (chrome://tracing, Perfetto)")
	metrics := flag.Bool("metrics", false, "print the run's span metrics (counts, totals, p50/p95/p99) to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-bin [-seq] [-workers N] [-queue-cap N] [-engine walker|compiled] [-trace out.json] [-metrics] [-emit out.nir] whole.nir")
		os.Exit(2)
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		toolio.Fatal(err)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		toolio.Fatal(err)
	}
	for _, opt := range m.LinkOptions {
		fmt.Fprintf(os.Stderr, "link option: %s\n", opt)
	}
	if *emit != "" {
		if err := toolio.WriteModule(m, *emit); err != nil {
			toolio.Fatal(err)
		}
		return
	}
	it := interp.New(m)
	it.SeqDispatch = *seq
	it.DispatchWorkers = *workers
	it.QueueCap = *queueCap
	it.Eng = eng
	if *trace != "" || *metrics {
		it.Tracer = obs.NewTracer()
	}
	code, err := it.Run()
	if err != nil {
		toolio.Fatal(err)
	}
	fmt.Print(it.Output.String())
	fmt.Fprintf(os.Stderr, "exit=%d cycles=%d steps=%d engine=%s\n", code, it.Cycles, it.Steps, it.Engine())
	// Per-lane stats surface worker skew the post-barrier merge hides.
	// Bounded: a dispatch-per-iteration module would otherwise flood the
	// footer (the full data is in -trace).
	const maxWorkerLines = 32
	stats := it.WorkerStats()
	for i, ws := range stats {
		if i == maxWorkerLines {
			fmt.Fprintf(os.Stderr, "worker stats: ... %d more lanes\n", len(stats)-i)
			break
		}
		fmt.Fprintf(os.Stderr, "worker d%d.w%d: claims=%d steps=%d cycles=%d\n",
			ws.Dispatch, ws.Lane, ws.Claims, ws.Steps, ws.Cycles)
	}
	if *metrics {
		reg := obs.NewRegistry()
		it.Tracer.MergeInto(reg)
		fmt.Fprint(os.Stderr, reg.Format())
	}
	if *trace != "" {
		if err := toolio.WriteTraceFile(*trace, obs.TraceLeg{Name: "noelle-bin", Tracer: it.Tracer}); err != nil {
			toolio.Fatal(err)
		}
	}
	os.Exit(int(code & 0xff))
}
