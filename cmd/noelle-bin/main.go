// noelle-bin produces the runnable artifact from an IR file and executes
// it (paper Table 2). The backend of this reproduction is the IR
// interpreter, so "generating the binary" means validating the module,
// honouring its embedded link options, and running it; -emit writes the
// final IR image instead of executing.
//
// Usage: noelle-bin whole.nir [-emit out.nir]
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/toolio"
)

func main() {
	emit := flag.String("emit", "", "write the executable IR image instead of running")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-bin whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		toolio.Fatal(err)
	}
	for _, opt := range m.LinkOptions {
		fmt.Fprintf(os.Stderr, "link option: %s\n", opt)
	}
	if *emit != "" {
		if err := toolio.WriteModule(m, *emit); err != nil {
			toolio.Fatal(err)
		}
		return
	}
	it := interp.New(m)
	code, err := it.Run()
	if err != nil {
		toolio.Fatal(err)
	}
	fmt.Print(it.Output.String())
	fmt.Fprintf(os.Stderr, "exit=%d cycles=%d steps=%d\n", code, it.Cycles, it.Steps)
	os.Exit(int(code & 0xff))
}
