// noelle-bin produces the runnable artifact from an IR file and executes
// it (paper Table 2). The backend of this reproduction is the IR
// interpreter, so "generating the binary" means validating the module,
// honouring its embedded link options, and running it; -emit writes the
// final IR image instead of executing.
//
// Modules produced by the parallelizing tools contain noelle_dispatch
// calls; those run their task workers concurrently on real cores by
// default. -seq falls back to sequential worker-order execution (for
// debugging), and -workers caps how many workers run simultaneously.
// Pipelined modules (dswp/helix -exec-plans) also create queues and
// signals through the communication runtime; -queue-cap overrides the
// queue capacity baked into the module (backpressure only — results are
// identical at any capacity).
//
// Usage: noelle-bin [-seq] [-workers N] [-queue-cap N] [-emit out.nir] whole.nir
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/toolio"
)

func main() {
	emit := flag.String("emit", "", "write the executable IR image instead of running")
	seq := flag.Bool("seq", false, "run dispatched tasks sequentially (debugging fallback)")
	workers := flag.Int("workers", 0, "cap on simultaneously-running dispatch workers (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 0, "override the capacity of the module's communication queues (0 = respect the module)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: noelle-bin [-seq] [-workers N] [-queue-cap N] [-emit out.nir] whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		toolio.Fatal(err)
	}
	for _, opt := range m.LinkOptions {
		fmt.Fprintf(os.Stderr, "link option: %s\n", opt)
	}
	if *emit != "" {
		if err := toolio.WriteModule(m, *emit); err != nil {
			toolio.Fatal(err)
		}
		return
	}
	it := interp.New(m)
	it.SeqDispatch = *seq
	it.DispatchWorkers = *workers
	it.QueueCap = *queueCap
	code, err := it.Run()
	if err != nil {
		toolio.Fatal(err)
	}
	fmt.Print(it.Output.String())
	fmt.Fprintf(os.Stderr, "exit=%d cycles=%d steps=%d\n", code, it.Cycles, it.Steps)
	os.Exit(int(code & 0xff))
}
