// noelle-whole-ir compiles mini-C sources (and/or existing .nir files)
// into a single whole-program IR file, embedding the compilation options
// as metadata (paper Table 2). It is the entry point of every NOELLE
// compilation flow.
//
// Usage: noelle-whole-ir -o whole.nir [-O] [-linkopt OPT]... src.c [src2.c ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"noelle/internal/ir"
	"noelle/internal/linker"
	"noelle/internal/passes"
	"noelle/internal/toolio"
)

func main() {
	out := flag.String("o", "-", "output IR file")
	optimize := flag.Bool("O", true, "run the standard optimization pipeline")
	var linkopts multi
	flag.Var(&linkopts, "linkopt", "option to embed for the final binary (repeatable)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: noelle-whole-ir -o out.nir src.c ...")
		os.Exit(2)
	}

	var mods []*ir.Module
	for _, path := range flag.Args() {
		var m *ir.Module
		var err error
		if strings.HasSuffix(path, ".nir") {
			m, err = toolio.ReadModule(path)
		} else {
			m, err = toolio.CompileC(path)
		}
		if err != nil {
			toolio.Fatal(err)
		}
		mods = append(mods, m)
	}
	whole, err := linker.Link("whole", mods...)
	if err != nil {
		toolio.Fatal(err)
	}
	whole.LinkOptions = append(whole.LinkOptions, linkopts...)
	if *optimize {
		passes.Optimize(whole)
	}
	whole.AssignIDs()
	if err := toolio.WriteModule(whole, *out); err != nil {
		toolio.Fatal(err)
	}
}

type multi []string

func (m *multi) String() string     { return strings.Join(*m, ",") }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }
