// noelle-arch measures the (simulated) architecture — core counts, SMT,
// NUMA layout, and core-to-core latencies — and writes the description
// file HELIX consumes (paper Table 2).
//
// Usage: noelle-arch [-cores N] [-smt N] [-numa N] [-o arch.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/arch"
)

func main() {
	cores := flag.Int("cores", 12, "physical cores")
	smt := flag.Int("smt", 2, "SMT ways per core")
	numa := flag.Int("numa", 1, "NUMA nodes")
	out := flag.String("o", "-", "output file")
	flag.Parse()

	d := arch.Measure(*cores, *smt, *numa)
	text := d.Serialize()
	if *out == "-" {
		fmt.Print(text)
		fmt.Fprintf(os.Stderr, "logical cores: %d, distinct pair latencies: %v\n",
			d.LogicalCores(), d.SortedPairLatencies())
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
