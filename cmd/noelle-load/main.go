// noelle-load loads the NOELLE layer over an IR file — without computing
// any abstraction — and runs the requested custom tools against it (paper
// Table 2: custom tools invoke NOELLE's empowered pass pipeline through
// noelle-load rather than through a bare opt). Tools are resolved through
// the registry (internal/tool); -tools runs a pipeline of stages over one
// manager, with cached abstractions invalidated after every transforming
// stage. Function PDGs are precomputed across a worker pool before the
// first stage (the paper's parallel abstraction computation).
//
// Usage: noelle-load -tools NAME[,NAME...] [-o out.nir] [-cores N]
//
//	[-budget N] [-hot F] [-workers N] whole.nir
//
// Run noelle-load -list for the registered tools.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"noelle/internal/core"
	"noelle/internal/tool"
	"noelle/internal/toolio"

	// Link every registered custom tool into the driver.
	_ "noelle/internal/tools"
)

func main() {
	toolFlag := flag.String("tool", "", "custom tool to run (single-stage alias for -tools)")
	toolsFlag := flag.String("tools", "", "comma-separated pipeline of custom tools (e.g. licm,dead,doall)")
	list := flag.Bool("list", false, "list the registered tools and exit")
	out := flag.String("o", "-", "output IR file")
	cores := flag.Int("cores", core.DefaultOptions().Cores, "worker count for parallelizers")
	budget := flag.Int64("budget", tool.DefaultOptions().Budget, "COOS callback budget (cycles)")
	hot := flag.Float64("hot", core.DefaultOptions().MinHotness, "minimum loop hotness tools consider (fraction of execution)")
	optimize := flag.Bool("optimize", true, "enable tools' optional optimization stages (e.g. HELIX's SCD header shrinking)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker pool size for the parallel PDG precompute (0 keeps the layer fully demand-driven; tools that never request a PDG then pay nothing)")
	cacheDir := flag.String("cache-dir", "", "persistent abstraction store directory: PDGs are loaded by structural fingerprint instead of rebuilt, and new builds are persisted for later runs (inspect with noelle-cache)")
	seq := flag.Bool("seq", false, "run dispatched tasks sequentially when a tool executes the module (the parallel runtime's debugging fallback)")
	dispatchWorkers := flag.Int("dispatch-workers", 0, "cap on simultaneously-running dispatch workers when a tool executes the module (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, t := range tool.Tools() {
			fmt.Printf("  %-12s %s\n", t.Name(), t.Describe())
		}
		return
	}

	names := splitTools(*toolsFlag)
	if *toolFlag != "" {
		names = append(names, *toolFlag)
	}
	if flag.NArg() != 1 || len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: noelle-load -tools NAME[,NAME...] whole.nir")
		fmt.Fprintf(os.Stderr, "tools: %s\n", strings.Join(tool.Names(), ", "))
		os.Exit(2)
	}

	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Cores = *cores
	opts.MinHotness = *hot
	opts.CacheDir = *cacheDir
	n := core.New(m, opts)
	if err := n.StoreErr(); err != nil {
		fmt.Fprintf(os.Stderr, "warning: abstraction store disabled: %v\n", err)
	}

	topts := tool.DefaultOptions()
	topts.Budget = *budget
	topts.Optimize = *optimize
	topts.PrecomputeWorkers = *workers
	topts.SeqDispatch = *seq
	topts.DispatchWorkers = *dispatchWorkers

	reports, err := tool.RunPipeline(context.Background(), n, names, topts)
	for _, rep := range reports {
		fmt.Fprintf(os.Stderr, "%s: %s\n", rep.Tool, rep.Summary)
		for _, d := range rep.Detail {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		if len(rep.Metrics) > 0 {
			fmt.Fprintf(os.Stderr, "%s: metrics: %s\n", rep.Tool, rep.MetricsLine())
		}
		fmt.Fprintf(os.Stderr, "%s: abstractions requested: %v\n", rep.Tool, rep.Abstractions)
	}
	if *cacheDir != "" {
		builds, hits, misses := n.CacheStats()
		fmt.Fprintf(os.Stderr, "abstraction store: %d PDGs built, %d loaded warm, %d misses\n", builds, hits, misses)
		if cerr := n.CloseStore(); cerr != nil {
			fmt.Fprintf(os.Stderr, "warning: closing abstraction store: %v\n", cerr)
		}
	}
	if err != nil {
		toolio.Fatal(err)
	}
	if err := toolio.WriteModule(m, *out); err != nil {
		toolio.Fatal(err)
	}
}

// splitTools parses the -tools value, tolerating empty segments.
func splitTools(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
