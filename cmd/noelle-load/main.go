// noelle-load loads the NOELLE layer over an IR file — without computing
// any abstraction — and runs the requested custom tool against it (paper
// Table 2: custom tools invoke NOELLE's empowered pass pipeline through
// noelle-load rather than through a bare opt).
//
// Usage: noelle-load -tool NAME [-o out.nir] [-cores N] [-budget N] whole.nir
//
// Tools: licm, dead, doall, helix, dswp, carat, coos, prvj, timesq, perspective
package main

import (
	"flag"
	"fmt"
	"os"

	"noelle/internal/core"
	"noelle/internal/toolio"
	"noelle/internal/tools/carat"
	"noelle/internal/tools/coos"
	"noelle/internal/tools/dead"
	"noelle/internal/tools/doall"
	"noelle/internal/tools/dswp"
	"noelle/internal/tools/helix"
	"noelle/internal/tools/licm"
	"noelle/internal/tools/perspective"
	"noelle/internal/tools/prvj"
	"noelle/internal/tools/timesq"
)

func main() {
	tool := flag.String("tool", "", "custom tool to run")
	out := flag.String("o", "-", "output IR file")
	cores := flag.Int("cores", 12, "worker count for parallelizers")
	budget := flag.Int64("budget", 4000, "COOS callback budget (cycles)")
	flag.Parse()
	if flag.NArg() != 1 || *tool == "" {
		fmt.Fprintln(os.Stderr, "usage: noelle-load -tool NAME whole.nir")
		os.Exit(2)
	}
	m, err := toolio.ReadModule(flag.Arg(0))
	if err != nil {
		toolio.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Cores = *cores
	opts.MinHotness = 0
	n := core.New(m, opts)

	switch *tool {
	case "licm":
		r := licm.Run(n)
		fmt.Fprintf(os.Stderr, "licm: hoisted %d instructions across %d loops\n", r.Hoisted, r.Loops)
	case "dead":
		r := dead.Run(n)
		fmt.Fprintf(os.Stderr, "dead: removed %d functions (%d -> %d instrs, -%.1f%%)\n",
			r.Removed, r.InstrsBefore, r.InstrsAfter, r.ReductionPercent())
	case "doall":
		r, err := doall.Run(n)
		if err != nil {
			toolio.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "doall: parallelized %d loops (rejected %d)\n", len(r.Parallelized), r.Rejected)
	case "helix":
		r := helix.Run(n, true)
		fmt.Fprintf(os.Stderr, "helix: planned %d loops (rejected %d)\n", len(r.Plans), r.Rejected)
		for _, p := range r.Plans {
			fmt.Fprintf(os.Stderr, "  @%s/%s: %d sequential segments\n", p.LS.Fn.Nam, p.LS.Header.Nam, p.NumSeq)
		}
	case "dswp":
		r := dswp.Run(n)
		fmt.Fprintf(os.Stderr, "dswp: planned %d loops (rejected %d)\n", len(r.Plans), r.Rejected)
		for _, p := range r.Plans {
			fmt.Fprintf(os.Stderr, "  @%s/%s: %d stages\n", p.LS.Fn.Nam, p.LS.Header.Nam, p.NumStages)
		}
	case "carat":
		r := carat.Run(n)
		fmt.Fprintf(os.Stderr, "carat: %d accesses, %d proven, %d guards (%d elided, %d hoisted)\n",
			r.Accesses, r.Proven, r.Guards, r.Elided, r.Hoisted)
	case "coos":
		r := coos.Run(n, *budget)
		fmt.Fprintf(os.Stderr, "coos: inserted %d callbacks (budget %d cycles)\n", r.Inserted, r.Budget)
	case "prvj":
		r := prvj.Run(n)
		fmt.Fprintf(os.Stderr, "prvj: %d generators, swapped %d call sites, kept %d\n",
			len(r.Generators), r.Swapped, r.Kept)
	case "timesq":
		r := timesq.Run(n)
		fmt.Fprintf(os.Stderr, "timesq: swapped %d compares, %d clock sets (naive placement: %d), %d islands\n",
			r.SwappedCompares, r.ClockSets, r.ClockSetsUnscheduled, r.Islands)
	case "perspective":
		r := perspective.Run(n)
		for _, p := range r.Plans {
			fmt.Fprintf(os.Stderr, "  @%s/%s: parallelizable=%v overhead/iter=%d\n",
				p.LS.Fn.Nam, p.LS.Header.Nam, p.Parallelizable, p.OverheadPerIter)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown tool %q\n", *tool)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "abstractions requested: %v\n", n.Requested())
	if err := toolio.WriteModule(m, *out); err != nil {
		toolio.Fatal(err)
	}
}
