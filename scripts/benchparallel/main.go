// benchparallel records the seq-vs-parallel wall-clock of the parallel
// interpreter runtime into a JSON artifact (make bench-parallel →
// BENCH_parallel.json). The measurement itself is eval.WallClockStudy —
// the same harness behind `noelle-eval -only wallclock` — which
// DOALL-transforms the bundled parallel benchmark and races
// noelle_dispatch's parallel backend against the -seq fallback, checking
// byte-identical output and memory fingerprints along the way. Each row
// carries an attribution block from a separate traced run (internal/obs)
// decomposing where the seq-vs-par wall-clock gap went.
//
// By default the sweep runs once per execution tier (walker and
// compiled), tagging every row with its engine: within one artifact the
// per-engine rows of the same worker count measure the compiled tier's
// speedup over the walker (scripts/benchcompare -tiers gates on it).
// -engine walker|compiled restricts the sweep to one tier.
//
// Usage: go run ./scripts/benchparallel [-workers 4] [-size 0]
//
//	[-engine both|walker|compiled] [-o BENCH_parallel.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"noelle/internal/eval"
	"noelle/internal/interp"
)

// Row is one worker count's measurement on one execution tier.
type Row struct {
	Workers   int               `json:"workers"`
	Engine    string            `json:"engine"`
	Modeled   float64           `json:"modeled_speedup"`
	SeqMS     float64           `json:"seq_ms"`
	ParMS     float64           `json:"par_ms"`
	Speedup   float64           `json:"speedup"`
	Identical bool              `json:"identical"` // output bytes AND memory fingerprint
	Attrib    *eval.Attribution `json:"attribution,omitempty"`
}

// Artifact is the written JSON document.
type Artifact struct {
	Benchmark string         `json:"benchmark"`
	Size      int            `json:"size"`
	Meta      eval.BenchMeta `json:"meta"`
	Rows      []Row          `json:"rows"`
}

// sweepEngines resolves the -engine flag: "both" (default) measures the
// walker first (the reference baseline), then the compiled tier.
func sweepEngines(flagVal string) ([]interp.Engine, error) {
	if flagVal == "both" || flagVal == "" {
		return []interp.Engine{interp.EngineWalker, interp.EngineCompiled}, nil
	}
	eng, err := interp.ParseEngine(flagVal)
	if err != nil {
		return nil, err
	}
	return []interp.Engine{eng}, nil
}

func main() {
	workers := flag.Int("workers", 4, "top worker count of the sweep (powers of two up to this)")
	size := flag.Int("size", 0, "array length per loop (0 = bundled default)")
	engine := flag.String("engine", "both", "execution tier(s) to measure: both|walker|compiled")
	out := flag.String("o", "BENCH_parallel.json", "output JSON path")
	flag.Parse()

	if err := run(*workers, *size, *engine, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchparallel:", err)
		os.Exit(1)
	}
}

func run(topWorkers, size int, engine, out string) error {
	counts := eval.WorkerSweep(topWorkers)
	if counts == nil {
		return fmt.Errorf("-workers must be >= 1 (got %d)", topWorkers)
	}
	engines, err := sweepEngines(engine)
	if err != nil {
		return err
	}

	art := Artifact{
		Benchmark: "bench.ParallelProgram",
		Size:      size,
		Meta:      eval.NewBenchMeta("make bench-parallel", 0.95),
	}
	if art.Size == 0 {
		art.Size = 65536
	}
	for _, eng := range engines {
		rows, err := eval.WallClockStudy(size, counts, 0, false, eng)
		if err != nil {
			return fmt.Errorf("engine=%s: %w", eng, err)
		}
		for _, r := range rows {
			art.Rows = append(art.Rows, Row{
				Workers:   r.Workers,
				Engine:    r.Engine,
				Modeled:   r.Modeled,
				SeqMS:     float64(r.SeqWall.Microseconds()) / 1000,
				ParMS:     float64(r.ParWall.Microseconds()) / 1000,
				Speedup:   r.Measured,
				Identical: r.Identical,
				Attrib:    r.Attrib,
			})
			fmt.Fprintf(os.Stderr, "engine=%s workers=%d modeled=%.2fx seq=%v par=%v measured=%.2fx identical=%v\n",
				r.Engine, r.Workers, r.Modeled, r.SeqWall.Round(time.Millisecond), r.ParWall.Round(time.Millisecond),
				r.Measured, r.Identical)
			if a := r.Attrib; a != nil {
				fmt.Fprintf(os.Stderr, "  gap=%.0fms blocked(crit)=%.0fms overhead=%.0fms trace-tax~%.0fms -> %.0f%% attributed\n",
					a.GapMS, a.BlockedCritMS, a.OverheadMS, a.TraceTaxMS, 100*a.AttributedFrac)
			}
		}
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}
