// checkdocs is the documentation-consistency gate (make check-docs, the
// CI docs job). It enforces three invariants that otherwise rot
// silently:
//
//  1. every relative markdown link in every *.md file resolves to an
//     existing file or directory (anchors and external URLs are skipped);
//  2. cmd/README.md mentions every binary directory under cmd/ — a new
//     noelle-* binary cannot land undocumented;
//  3. cmd/README.md mentions every registered custom tool by name — the
//     registry is linked in, so the check is against the live inventory,
//     not a hand-maintained list.
//
// Usage: go run ./scripts/checkdocs [-root .]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"noelle/internal/tool"

	// The live tool inventory the README is checked against.
	_ "noelle/internal/tools"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare enough here to skip.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// ---- 1: relative links in every tracked markdown file resolve ----
	var mdFiles []string
	err := filepath.Walk(*root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		name := info.Name()
		if info.IsDir() {
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(1)
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkdocs:", err)
			os.Exit(1)
		}
		for _, m := range linkRe.FindAllStringSubmatch(stripFences(string(data)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				fail("%s: broken link %q (%s does not exist)", md, m[1], resolved)
			}
		}
	}

	// ---- 2: cmd/README.md names every binary under cmd/ ----
	readmePath := filepath.Join(*root, "cmd", "README.md")
	readme, err := os.ReadFile(readmePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(1)
	}
	entries, err := os.ReadDir(filepath.Join(*root, "cmd"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(1)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(readme), e.Name()) {
			fail("cmd/README.md does not mention binary %q", e.Name())
		}
	}

	// ---- 3: cmd/README.md names every registered custom tool ----
	for _, name := range tool.Names() {
		if !regexp.MustCompile(`(?m)\b` + regexp.QuoteMeta(name) + `\b`).Match(readme) {
			fail("cmd/README.md does not mention registered tool %q", name)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "checkdocs:", p)
		}
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("checkdocs: %d markdown files, %d binaries, %d tools — all consistent\n",
		len(mdFiles), countDirs(entries), len(tool.Names()))
}

// stripFences drops ```-fenced code blocks: quoted exemplar code (e.g.
// SNIPPETS.md) links into *other* repositories, which is not a rot
// signal for this one.
func stripFences(s string) string {
	var out []string
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func countDirs(entries []os.DirEntry) int {
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			n++
		}
	}
	return n
}
