#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke check for the compile service
# (make serve-smoke).
#
# Starts noelle-serve under -race on a unix socket, drives it with the
# benchserve load generator in smoke mode (cold populate, concurrent
# identical burst that must coalesce, warm re-run that must hit the
# resident session, mixed second-module traffic, stats assertions), then
# byte-diffs the daemon's report rendering against a cold
# `noelle-load -tools licm,dead` on the same module, and finally checks
# the daemon drained cleanly and its store is readable by noelle-cache.
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true' EXIT
sock="$workdir/noelle.sock"
cache="$workdir/cache"

echo "== start daemon =="
go run -race ./cmd/noelle-serve -listen "unix:$sock" -cache-dir "$cache" \
  -workers 2 -queue 32 -sessions 8 -metrics 2> "$workdir/daemon.log" &
daemon_pid=$!

echo "== drive traffic (benchserve -mode smoke) =="
go run ./scripts/benchserve -mode smoke -addr "unix:$sock" -out-dir "$workdir"

echo "== wait for clean daemon exit =="
if ! wait "$daemon_pid"; then
  echo "FAIL: daemon exited non-zero" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
fi
daemon_pid=""
cat "$workdir/daemon.log"

echo "== byte-diff daemon reports vs cold noelle-load =="
go run ./cmd/noelle-load -tools licm,dead -o /dev/null "$workdir/smoke_module.nir" \
  2> "$workdir/load_report.txt"
if ! diff -u "$workdir/load_report.txt" "$workdir/smoke_report.txt"; then
  echo "FAIL: daemon report rendering differs from cold noelle-load" >&2
  exit 1
fi

echo "== store left behind is readable =="
go run ./cmd/noelle-cache -dir "$cache" stats
go run ./cmd/noelle-cache -dir "$cache" -json stats > /dev/null

echo "OK: serve smoke passed (coalesced + warm hits asserted by the generator)"
