#!/usr/bin/env bash
# example_smoke.sh replays the examples/parallelize walkthrough through
# the real CLIs (make example-smoke, the CI example step) and asserts
# its observable promises:
#
#   1. `noelle-load -tools auto -exec-plans` selects a technique per hot
#      loop: DOALL for the data-parallel loops, a pipelining technique
#      (dswp or helix) for the recurrence loop, with a why-report.
#   2. The lowered module's output is byte-identical across the original
#      program, the sequential fallback, and the parallel dispatch run —
#      and matches the committed expected_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/bin/" ./cmd/...
PATH="$tmp/bin:$PATH"

echo "== compile + profile =="
noelle-whole-ir -o "$tmp/whole.nir" examples/parallelize/testdata/walkthrough.c
noelle-meta-prof-embed -o "$tmp/prof.nir" "$tmp/whole.nir"

echo "== auto-parallelize (plan-only first, then -exec-plans) =="
noelle-load -tools auto -o /dev/null "$tmp/prof.nir" 2>"$tmp/plan.txt"
grep -q "predicted winners" "$tmp/plan.txt" ||
  { echo "FAIL: plan-only auto run did not report predictions"; cat "$tmp/plan.txt"; exit 1; }

noelle-load -tools auto -exec-plans -queue-cap 64 -o "$tmp/par.nir" "$tmp/prof.nir" 2>"$tmp/report.txt"
cat "$tmp/report.txt"

grep -q "doall lowered" "$tmp/report.txt" ||
  { echo "FAIL: auto did not select DOALL for the data-parallel loops"; exit 1; }
grep -Eq "(dswp|helix) lowered" "$tmp/report.txt" ||
  { echo "FAIL: auto did not select a pipelining technique for the recurrence loop"; exit 1; }
grep -q "doall rejected: sequential SCCs present" "$tmp/report.txt" ||
  { echo "FAIL: the why-report does not explain DOALL's rejection of the recurrence loop"; exit 1; }

echo "== execute: original vs -seq fallback vs parallel dispatch =="
# noelle-bin exits with the program's exit code and prints its
# "exit=... cycles=... steps=..." account to stderr; capture both per
# run. All runs must agree on output bytes and exit code, and every run
# of the *lowered* module must agree on cycles/steps too (the modeled
# totals are mode-independent by construction).
run() { # run <tag> <args...>
  local tag=$1; shift
  set +e
  noelle-bin "$@" >"$tmp/$tag.txt" 2>"$tmp/$tag.err"
  local ec=$?
  set -e
  echo "$ec $(grep -o 'cycles=[0-9]* steps=[0-9]*' "$tmp/$tag.err")"
}
st_orig=$(run orig "$tmp/prof.nir")
st_seq=$(run seq -seq "$tmp/par.nir")
st_par=$(run par -queue-cap 16 "$tmp/par.nir")
st_w2=$(run w2 -workers 2 "$tmp/par.nir")
# Execution tiers: the walker (reference) and compiled (default) engines
# must agree on exit code, cycles, steps, and output bytes too.
st_wk=$(run wk -engine walker "$tmp/par.nir")
st_cp=$(run cp -engine compiled "$tmp/par.nir")
[ "${st_orig%% *}" = "${st_seq%% *}" ] && [ "$st_seq" = "$st_par" ] && [ "$st_par" = "$st_w2" ] ||
  { echo "FAIL: exit/cycles/steps diverged (orig='$st_orig' seq='$st_seq' par='$st_par' w2='$st_w2')"; exit 1; }
[ "$st_wk" = "$st_cp" ] && [ "$st_cp" = "$st_par" ] ||
  { echo "FAIL: execution tiers diverged (walker='$st_wk' compiled='$st_cp' default='$st_par')"; exit 1; }

diff -u examples/parallelize/testdata/expected_output.txt "$tmp/orig.txt"
diff -u "$tmp/orig.txt" "$tmp/seq.txt"
diff -u "$tmp/seq.txt" "$tmp/par.txt"
diff -u "$tmp/par.txt" "$tmp/w2.txt"
diff -u "$tmp/wk.txt" "$tmp/cp.txt"

echo "example-smoke: OK (auto selected per-loop techniques; output byte-identical)"
