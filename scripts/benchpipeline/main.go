// benchpipeline records the seq-vs-parallel wall-clock of the queue
// communication runtime into a JSON artifact (make bench-pipeline →
// BENCH_pipeline.json). The measurement itself is
// eval.PipelineWallClockStudy — the same harness behind `noelle-eval
// -only wallclock` — which lowers the bundled pipeline benchmark with
// DSWP (stages over bounded queues) and HELIX (signal-guarded
// iterations) and races noelle_dispatch's parallel backend against the
// -seq fallback, checking byte-identical output and memory fingerprints
// along the way. Modeled columns come from SimulateDSWP (on the
// queue-calibrated machine config) and SimulateHELIX.
//
// Usage: go run ./scripts/benchpipeline [-cores 4] [-size 0]
//
//	[-queue-cap 0] [-o BENCH_pipeline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"noelle/internal/eval"
)

// Row is one technique's measurement.
type Row struct {
	Technique string  `json:"technique"`
	Cores     int     `json:"cores"`
	Parts     int     `json:"parts"` // DSWP stages / HELIX sequential segments
	Modeled   float64 `json:"modeled_speedup"`
	SeqMS     float64 `json:"seq_ms"`
	ParMS     float64 `json:"par_ms"`
	Speedup   float64 `json:"speedup"`
	CommOps   int64   `json:"comm_ops"`
	Identical bool    `json:"identical"` // output bytes AND memory fingerprint
}

// Artifact is the written JSON document.
type Artifact struct {
	Benchmark   string `json:"benchmark"`
	Size        int    `json:"size"`
	CPUs        int    `json:"cpus"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Rows        []Row  `json:"rows"`
	GeneratedBy string `json:"generated_by"`
}

func main() {
	cores := flag.Int("cores", 4, "core count for the pipeline plans and the dispatch cap")
	size := flag.Int("size", 0, "iteration count per loop (0 = bundled default)")
	queueCap := flag.Int("queue-cap", 0, "communication queue capacity (0 = default)")
	out := flag.String("o", "BENCH_pipeline.json", "output JSON path")
	flag.Parse()

	if err := run(*cores, *size, *queueCap, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipeline:", err)
		os.Exit(1)
	}
}

func run(cores, size, queueCap int, out string) error {
	rows, err := eval.PipelineWallClockStudy(size, cores, 0, queueCap, false)
	if err != nil {
		return err
	}

	art := Artifact{
		Benchmark:   "bench.PipelineProgram",
		Size:        size,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GeneratedBy: "make bench-pipeline",
	}
	if art.Size == 0 {
		art.Size = 65536
	}
	for _, r := range rows {
		art.Rows = append(art.Rows, Row{
			Technique: r.Technique,
			Cores:     r.Cores,
			Parts:     r.Parts,
			Modeled:   r.Modeled,
			SeqMS:     float64(r.SeqWall.Microseconds()) / 1000,
			ParMS:     float64(r.ParWall.Microseconds()) / 1000,
			Speedup:   r.Measured,
			CommOps:   r.QueueOps,
			Identical: r.Identical,
		})
		fmt.Fprintf(os.Stderr, "%s cores=%d parts=%d modeled=%.2fx seq=%v par=%v measured=%.2fx comm=%d identical=%v\n",
			r.Technique, r.Cores, r.Parts, r.Modeled, r.SeqWall.Round(time.Millisecond),
			r.ParWall.Round(time.Millisecond), r.Measured, r.QueueOps, r.Identical)
		if !r.Identical {
			// The artifact doubles as CI's equivalence guard: a parallel
			// leg that diverges from -seq must fail the build, not just
			// flip a JSON field.
			return fmt.Errorf("%s: parallel output diverged from the sequential fallback", r.Technique)
		}
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}
