// benchpipeline records the seq-vs-parallel wall-clock of the queue
// communication runtime into a JSON artifact (make bench-pipeline →
// BENCH_pipeline.json). The measurement itself is
// eval.PipelineWallClockStudy — the same harness behind `noelle-eval
// -only wallclock` — which lowers the bundled pipeline benchmark with
// DSWP (stages over bounded queues) and HELIX (signal-guarded
// iterations) and races noelle_dispatch's parallel backend against the
// -seq fallback, checking byte-identical output and memory fingerprints
// along the way. Modeled columns come from SimulateDSWP (on the
// queue-calibrated machine config) and SimulateHELIX.
//
// Each row carries an attribution block from a separate traced run
// (internal/obs): the blocked-vs-running decomposition that explains
// where the seq-vs-par wall-clock gap went. -trace additionally exports
// those traced runs as one Chrome trace-event JSON timeline.
//
// By default the study runs once per execution tier (walker and
// compiled), tagging every row with its engine: within one artifact the
// per-engine rows of the same technique measure the compiled tier's
// speedup over the walker (scripts/benchcompare -tiers gates on it).
// -engine walker|compiled restricts the study to one tier.
//
// Usage: go run ./scripts/benchpipeline [-cores 4] [-size 0]
//
//	[-queue-cap 0] [-engine both|walker|compiled] [-trace trace.json]
//	[-o BENCH_pipeline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"noelle/internal/eval"
	"noelle/internal/interp"
	"noelle/internal/obs"
)

// Row is one technique's measurement on one execution tier.
type Row struct {
	Technique string            `json:"technique"`
	Engine    string            `json:"engine"`
	Cores     int               `json:"cores"`
	Parts     int               `json:"parts"` // DSWP stages / HELIX sequential segments
	Modeled   float64           `json:"modeled_speedup"`
	SeqMS     float64           `json:"seq_ms"`
	ParMS     float64           `json:"par_ms"`
	Speedup   float64           `json:"speedup"`
	CommOps   int64             `json:"comm_ops"`
	Identical bool              `json:"identical"` // output bytes AND memory fingerprint
	Attrib    *eval.Attribution `json:"attribution,omitempty"`
}

// Artifact is the written JSON document.
type Artifact struct {
	Benchmark string         `json:"benchmark"`
	Size      int            `json:"size"`
	Meta      eval.BenchMeta `json:"meta"`
	Rows      []Row          `json:"rows"`
}

// sweepEngines resolves the -engine flag: "both" (default) measures the
// walker first (the reference baseline), then the compiled tier.
func sweepEngines(flagVal string) ([]interp.Engine, error) {
	if flagVal == "both" || flagVal == "" {
		return []interp.Engine{interp.EngineWalker, interp.EngineCompiled}, nil
	}
	eng, err := interp.ParseEngine(flagVal)
	if err != nil {
		return nil, err
	}
	return []interp.Engine{eng}, nil
}

func main() {
	cores := flag.Int("cores", 4, "core count for the pipeline plans and the dispatch cap")
	size := flag.Int("size", 0, "iteration count per loop (0 = bundled default)")
	queueCap := flag.Int("queue-cap", 0, "communication queue capacity (0 = default)")
	engine := flag.String("engine", "both", "execution tier(s) to measure: both|walker|compiled")
	trace := flag.String("trace", "", "also export the attribution runs as a Chrome trace-event JSON file")
	out := flag.String("o", "BENCH_pipeline.json", "output JSON path")
	flag.Parse()

	if err := run(*cores, *size, *queueCap, *engine, *trace, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipeline:", err)
		os.Exit(1)
	}
}

func run(cores, size, queueCap int, engine, trace, out string) error {
	engines, err := sweepEngines(engine)
	if err != nil {
		return err
	}

	art := Artifact{
		Benchmark: "bench.PipelineProgram",
		Size:      size,
		Meta:      eval.NewBenchMeta("make bench-pipeline", 0.95),
	}
	if art.Size == 0 {
		art.Size = 65536
	}
	var legs []obs.TraceLeg
	for _, eng := range engines {
		rows, err := eval.PipelineWallClockStudy(size, cores, 0, queueCap, false, eng)
		if err != nil {
			return fmt.Errorf("engine=%s: %w", eng, err)
		}
		for _, r := range rows {
			art.Rows = append(art.Rows, Row{
				Technique: r.Technique,
				Engine:    r.Engine,
				Cores:     r.Cores,
				Parts:     r.Parts,
				Modeled:   r.Modeled,
				SeqMS:     float64(r.SeqWall.Microseconds()) / 1000,
				ParMS:     float64(r.ParWall.Microseconds()) / 1000,
				Speedup:   r.Measured,
				CommOps:   r.QueueOps,
				Identical: r.Identical,
				Attrib:    r.Attrib,
			})
			fmt.Fprintf(os.Stderr, "engine=%s %s cores=%d parts=%d modeled=%.2fx seq=%v par=%v measured=%.2fx comm=%d identical=%v\n",
				r.Engine, r.Technique, r.Cores, r.Parts, r.Modeled, r.SeqWall.Round(time.Millisecond),
				r.ParWall.Round(time.Millisecond), r.Measured, r.QueueOps, r.Identical)
			if a := r.Attrib; a != nil {
				fmt.Fprintf(os.Stderr, "  gap=%.0fms blocked(crit)=%.0fms overhead=%.0fms trace-tax~%.0fms -> %.0f%% attributed\n",
					a.GapMS, a.BlockedCritMS, a.OverheadMS, a.TraceTaxMS, 100*a.AttributedFrac)
			}
			if r.Trace != nil {
				legs = append(legs, obs.TraceLeg{Name: r.Engine + "/" + r.Technique, Tracer: r.Trace})
			}
			if !r.Identical {
				// The artifact doubles as CI's equivalence guard: a parallel
				// leg that diverges from -seq must fail the build, not just
				// flip a JSON field.
				return fmt.Errorf("engine=%s %s: parallel output diverged from the sequential fallback", r.Engine, r.Technique)
			}
		}
	}

	if trace != "" && len(legs) > 0 {
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, legs...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d legs)\n", trace, len(legs))
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}
