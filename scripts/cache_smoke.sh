#!/usr/bin/env bash
# cache_smoke.sh — two-process warm-load smoke check for the persistent
# abstraction store (make cache-smoke).
#
# Process 1 runs noelle-load cold with -cache-dir, populating the store.
# Process 2 runs the identical invocation and must load every PDG warm:
# the stats file noelle-cache surfaces must show last.misses=0 and
# last.hits > 0 for the second session.
set -euo pipefail

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cache="$workdir/cache"

cat > "$workdir/prog.c" <<'EOF'
int table[128];

int fill(int seed) {
  int s = 0;
  for (int i = 0; i < 128; i = i + 1) {
    table[i] = seed + i;
    s = s + table[i];
  }
  return s;
}

int main() {
  int s = fill(3);
  print_i64(s);
  return 0;
}
EOF

go run ./cmd/noelle-whole-ir -o "$workdir/whole.nir" "$workdir/prog.c"

echo "== run 1 (cold) =="
go run ./cmd/noelle-load -tools licm -cache-dir "$cache" -o /dev/null "$workdir/whole.nir"

echo "== run 2 (warm) =="
go run ./cmd/noelle-load -tools licm -cache-dir "$cache" -o /dev/null "$workdir/whole.nir"

echo "== noelle-cache stats =="
stats=$(go run ./cmd/noelle-cache -dir "$cache" stats)
echo "$stats"
go run ./cmd/noelle-cache -dir "$cache" ls

last_misses=$(echo "$stats" | sed -n 's/^last.misses=//p')
last_hits=$(echo "$stats" | sed -n 's/^last.hits=//p')
if [ "$last_misses" != "0" ]; then
  echo "FAIL: warm run missed $last_misses records" >&2
  exit 1
fi
if [ -z "$last_hits" ] || [ "$last_hits" -lt 1 ]; then
  echo "FAIL: warm run reported no store hits" >&2
  exit 1
fi
echo "OK: warm run loaded $last_hits PDGs from the store with zero misses"
