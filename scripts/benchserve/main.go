// benchserve is the compile service's load generator, with two modes.
//
// -mode bench (default) measures what the daemon exists to buy: it
// starts two in-process servers — one warm (session reuse + shared
// abstraction store), one cold (ColdPerRequest: every request pays the
// full parse and abstraction build, like a cold CLI process, minus even
// the process startup the CLI would add) — and drives identical client
// fleets at several concurrency levels, recording throughput and
// p50/p95/p99 latency per fleet into BENCH_serve.json (make
// bench-serve). The artifact gates on warm mean latency being at least
// 2x better than cold.
//
// -mode smoke drives a RUNNING daemon (-addr) through the full service
// surface: a cold populate, a concurrent burst of identical requests
// that must coalesce, a warm re-run that must render byte-identically
// to the cold one, concurrent mixed traffic on a second module, and a
// stats probe asserting warm-hit and coalesce counters moved. It writes
// the module and the canonical report rendering under -out-dir so
// scripts/serve_smoke.sh can diff them against a cold noelle-load run,
// then asks the daemon to shut down.
//
// Usage: go run ./scripts/benchserve [-mode bench|smoke] [flags]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"noelle/internal/eval"
	"noelle/internal/ir"
	"noelle/internal/minic"
	"noelle/internal/passes"
	"noelle/internal/serve"

	// The in-process bench servers resolve pipelines through the registry.
	_ "noelle/internal/tools"
)

// fixture is the benchmarked program: enough loops and calls that the
// abstraction build (parse + PDG precompute) dominates a cold request,
// which is exactly the cost the warm server amortizes. The %d seed
// varies the structure so distinct clients can get distinct modules.
const fixtureHead = `
int table[256];
int st[2];
int scale = %d;

int prvg_next(int *s) {
  s[0] = (s[0] * 1103515245 + 12345) %% 2147483647;
  if (s[0] < 0) { s[0] = 0 - s[0]; }
  return s[0];
}
int never_called(int x) { return x * 2; }
`

// fixtureStage is repeated kernelCount times (indexed %[1]d): each copy
// is a loop nest with cross-iteration array traffic, calls, and
// hoistable invariants — the shape whose PDG is expensive to build.
const fixtureStage = `
int stage%[1]d(int n) {
  int i;
  int j;
  int acc = %[1]d;
  for (i = 0; i < n; i = i + 1) {
    int k = scale * 7 + %[1]d;
    for (j = 0; j < 8; j = j + 1) {
      table[(i + j + %[1]d) %% 256] = k + table[(i + j) %% 256] + prvg_next(&st[0]) %% 3;
      acc = acc + table[(i + j) %% 256];
    }
    acc = acc + k * j - i;
  }
  return acc;
}
`

const kernelCount = 8

func moduleText(seed int) (string, error) {
	var src strings.Builder
	fmt.Fprintf(&src, fixtureHead, seed)
	for i := 0; i < kernelCount; i++ {
		fmt.Fprintf(&src, fixtureStage, i+1)
	}
	src.WriteString("int main() {\n  st[0] = 7;\n  int acc = 0;\n")
	for i := 0; i < kernelCount; i++ {
		fmt.Fprintf(&src, "  acc = acc + stage%d(40);\n", i+1)
	}
	src.WriteString("  print_i64(acc % 1000);\n  return acc % 256;\n}\n")

	m, err := minic.Compile("benchserve", src.String())
	if err != nil {
		return "", err
	}
	passes.Optimize(m)
	return ir.Print(m), nil
}

func main() {
	mode := flag.String("mode", "bench", "bench (in-process warm-vs-cold study) or smoke (drive a running daemon)")
	addr := flag.String("addr", "", "daemon address for -mode smoke (unix:PATH or tcp:HOST:PORT)")
	outDir := flag.String("out-dir", ".", "smoke: directory for the module and report artifacts")
	out := flag.String("o", "BENCH_serve.json", "bench: output JSON path")
	perClient := flag.Int("requests", 10, "bench: requests per client at each concurrency level")
	toolsFlag := flag.String("tools", "perspective", "bench: comma-separated pipeline each request runs")
	flag.Parse()

	var err error
	switch *mode {
	case "bench":
		err = benchMain(*out, *toolsFlag, *perClient)
	case "smoke":
		err = smokeMain(*addr, *outDir)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

// ---------- bench mode ----------

// Row is one concurrency level's warm-vs-cold comparison.
type Row struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"` // total across the fleet
	WarmRPS     float64 `json:"warm_rps"`
	ColdRPS     float64 `json:"cold_rps"`
	WarmMeanMS  float64 `json:"warm_mean_ms"`
	ColdMeanMS  float64 `json:"cold_mean_ms"`
	WarmP50MS   float64 `json:"warm_p50_ms"`
	WarmP95MS   float64 `json:"warm_p95_ms"`
	WarmP99MS   float64 `json:"warm_p99_ms"`
	ColdP50MS   float64 `json:"cold_p50_ms"`
	ColdP95MS   float64 `json:"cold_p95_ms"`
	ColdP99MS   float64 `json:"cold_p99_ms"`
	Speedup     float64 `json:"mean_speedup"` // cold mean / warm mean
}

// Artifact is the written JSON document.
type Artifact struct {
	Benchmark string         `json:"benchmark"`
	Tools     []string       `json:"tools"`
	Meta      eval.BenchMeta `json:"meta"`
	Rows      []Row          `json:"rows"`
}

// startInProc runs a server over a loopback listener and returns its
// address plus a drain function.
func startInProc(cfg serve.Config) (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := serve.New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-done
	}
	return "tcp:" + ln.Addr().String(), stop, nil
}

// fleet drives c clients, each sending perClient sequential requests of
// its own module variant over one connection, and returns every
// request's latency plus the fleet wall-clock.
func fleet(addr string, c, perClient int, tools []string, mods []string) ([]time.Duration, time.Duration, error) {
	var (
		mu  sync.Mutex
		lat []time.Duration
		wg  sync.WaitGroup
	)
	errs := make(chan error, c)
	start := time.Now()
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func(mod string) {
			defer wg.Done()
			cl, err := serve.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for r := 0; r < perClient; r++ {
				req := &serve.RunRequest{Module: mod, Tools: tools, Opts: serve.DefaultRunOptions()}
				t0 := time.Now()
				done, err := cl.Run(req, nil)
				if err != nil {
					errs <- err
					return
				}
				if done.Status != serve.StatusOK {
					errs <- fmt.Errorf("run status %q: %s", done.Status, done.Error)
					return
				}
				mu.Lock()
				lat = append(lat, time.Since(t0))
				mu.Unlock()
			}
		}(mods[i%len(mods)])
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return lat, wall, nil
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func summarize(lat []time.Duration) (mean, p50, p95, p99 time.Duration) {
	if len(lat) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return total / time.Duration(len(sorted)), quantile(sorted, 0.50), quantile(sorted, 0.95), quantile(sorted, 0.99)
}

func benchMain(out, toolsFlag string, perClient int) error {
	tools := strings.Split(toolsFlag, ",")
	cacheDir, err := os.MkdirTemp("", "benchserve-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	warmAddr, stopWarm, err := startInProc(serve.Config{Workers: 4, QueueDepth: 128, CacheDir: cacheDir})
	if err != nil {
		return err
	}
	defer stopWarm()
	coldAddr, stopCold, err := startInProc(serve.Config{Workers: 4, QueueDepth: 128, ColdPerRequest: true})
	if err != nil {
		return err
	}
	defer stopCold()

	art := Artifact{
		Benchmark: "serve.WarmVsCold",
		Tools:     tools,
		Meta:      eval.NewBenchMeta("make bench-serve", 0.95),
	}
	var warmMeanSum, coldMeanSum float64
	for _, conc := range []int{1, 2, 4} {
		// Distinct module per client: reuse within a client's request
		// stream, none across clients — the per-user steady state.
		mods := make([]string, conc)
		for i := range mods {
			if mods[i], err = moduleText(3 + 100*i); err != nil {
				return err
			}
		}
		warmLat, warmWall, err := fleet(warmAddr, conc, perClient, tools, mods)
		if err != nil {
			return fmt.Errorf("warm fleet (c=%d): %w", conc, err)
		}
		coldLat, coldWall, err := fleet(coldAddr, conc, perClient, tools, mods)
		if err != nil {
			return fmt.Errorf("cold fleet (c=%d): %w", conc, err)
		}
		wMean, wP50, wP95, wP99 := summarize(warmLat)
		cMean, cP50, cP95, cP99 := summarize(coldLat)
		row := Row{
			Concurrency: conc,
			Requests:    conc * perClient,
			WarmRPS:     float64(len(warmLat)) / warmWall.Seconds(),
			ColdRPS:     float64(len(coldLat)) / coldWall.Seconds(),
			WarmMeanMS:  ms(wMean), ColdMeanMS: ms(cMean),
			WarmP50MS: ms(wP50), WarmP95MS: ms(wP95), WarmP99MS: ms(wP99),
			ColdP50MS: ms(cP50), ColdP95MS: ms(cP95), ColdP99MS: ms(cP99),
		}
		if row.WarmMeanMS > 0 {
			row.Speedup = row.ColdMeanMS / row.WarmMeanMS
		}
		warmMeanSum += row.WarmMeanMS
		coldMeanSum += row.ColdMeanMS
		art.Rows = append(art.Rows, row)
		fmt.Fprintf(os.Stderr, "c=%d warm: %.1f req/s mean=%.2fms p95=%.2fms | cold: %.1f req/s mean=%.2fms p95=%.2fms | %.1fx\n",
			conc, row.WarmRPS, row.WarmMeanMS, row.WarmP95MS, row.ColdRPS, row.ColdMeanMS, row.ColdP95MS, row.Speedup)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)

	// The daemon's reason to exist: warm must be at least 2x better than
	// cold on mean latency (and cold here is generous — it skips the
	// process startup a real cold CLI invocation would also pay).
	if warmMeanSum*2 > coldMeanSum {
		return fmt.Errorf("warm mean latency not 2x better than cold: warm=%.2fms cold=%.2fms (summed over levels)",
			warmMeanSum, coldMeanSum)
	}
	return nil
}

// ---------- smoke mode ----------

// renderRun executes one request, rendering reports and the verifier
// footer exactly as noelle-load prints them to stderr.
func renderRun(cl *serve.Client, req *serve.RunRequest) (string, *serve.Done, error) {
	var b strings.Builder
	done, err := cl.Run(req, func(msg serve.ReportMsg) { msg.ToReport().Fprint(&b) })
	if err != nil {
		return "", nil, err
	}
	if done.Status != serve.StatusOK {
		return "", nil, fmt.Errorf("run status %q: %s", done.Status, done.Error)
	}
	if done.VerifierStats != "" {
		fmt.Fprintln(&b, done.VerifierStats)
	}
	return b.String(), done, nil
}

func smokeMain(addr, outDir string) error {
	if addr == "" {
		return fmt.Errorf("-mode smoke requires -addr")
	}
	modA, err := moduleText(3)
	if err != nil {
		return err
	}
	modB, err := moduleText(41)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "smoke_module.nir"), []byte(modA), 0o644); err != nil {
		return err
	}

	// The daemon may still be binding its socket.
	var cl *serve.Client
	for i := 0; ; i++ {
		if cl, err = serve.Dial(addr); err == nil {
			break
		}
		if i > 100 {
			return fmt.Errorf("daemon never came up at %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return err
	}

	reqA := &serve.RunRequest{Module: modA, Tools: []string{"licm", "dead"}, Opts: serve.DefaultRunOptions()}

	// Phase 1: cold populate. This rendering is the byte-diff reference
	// against a cold `noelle-load -tools licm,dead`.
	coldOut, d, err := renderRun(cl, reqA)
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	if d.SessionHit {
		return fmt.Errorf("first request claimed a session hit")
	}
	if err := os.WriteFile(filepath.Join(outDir, "smoke_report.txt"), []byte(coldOut), 0o644); err != nil {
		return err
	}

	// Phase 2: concurrent mixed traffic — a burst of identical requests
	// (must coalesce: any two overlapping identical requests share one
	// execution) interleaved with a different module's pipeline.
	coalesced, err := coalesceBurst(addr, reqA, modB)
	if err != nil {
		return err
	}

	// Phase 3: warm re-run on the original connection must hit the
	// resident session and render byte-identically.
	warmOut, d, err := renderRun(cl, reqA)
	if err != nil {
		return fmt.Errorf("warm run: %w", err)
	}
	if !d.SessionHit {
		return fmt.Errorf("warm re-run missed the session")
	}
	if warmOut != coldOut {
		return fmt.Errorf("warm reports differ from cold:\n--- cold ---\n%s--- warm ---\n%s", coldOut, warmOut)
	}

	st, err := cl.Stats()
	if err != nil {
		return err
	}
	hits := st.Counter("serve.session.hits")
	if hits == 0 {
		return fmt.Errorf("stats: no session hits after warm traffic\n%s", st.Metrics)
	}
	if coalesced == 0 || st.Counter("serve.coalesced") == 0 {
		return fmt.Errorf("stats: no coalesced requests after identical burst\n%s", st.Metrics)
	}
	fmt.Fprintf(os.Stderr, "smoke: session hits=%d coalesced=%d sessions=%d stores=%d\n",
		hits, st.Counter("serve.coalesced"), st.Sessions, len(st.Stores))

	if err := cl.Shutdown(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "smoke: shutdown acknowledged")
	return nil
}

// coalesceBurst fires bursts of identical concurrent requests (plus one
// mixed-module request) until at least one response reports Coalesced.
// Identical overlapping requests always coalesce, so one burst nearly
// always suffices; the retry bounds scheduler bad luck.
func coalesceBurst(addr string, req *serve.RunRequest, otherModule string) (int, error) {
	const clients = 8
	for attempt := 0; attempt < 5; attempt++ {
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			coalesced int
		)
		errs := make(chan error, clients+1)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := serve.Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				done, err := cl.Run(req, nil)
				if err != nil {
					errs <- err
					return
				}
				if done.Status != serve.StatusOK {
					errs <- fmt.Errorf("burst status %q: %s", done.Status, done.Error)
					return
				}
				if done.Coalesced {
					mu.Lock()
					coalesced++
					mu.Unlock()
				}
			}()
		}
		wg.Add(1)
		go func() { // the mixed-traffic lane
			defer wg.Done()
			cl, err := serve.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			other := &serve.RunRequest{Module: otherModule, Tools: []string{"perspective"}, Opts: serve.DefaultRunOptions()}
			if done, err := cl.Run(other, nil); err != nil {
				errs <- err
			} else if done.Status != serve.StatusOK {
				errs <- fmt.Errorf("mixed run status %q: %s", done.Status, done.Error)
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return 0, err
			}
		}
		if coalesced > 0 {
			return coalesced, nil
		}
	}
	return 0, nil
}
