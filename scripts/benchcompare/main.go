// benchcompare diffs two BENCH_*.json artifacts (old vs new) produced by
// the bench scripts: it refuses to compare artifacts whose schema
// versions differ, pairs up rows by their identifying fields (technique,
// workers, benchmark), and flags any speedup that dropped below the old
// value times the artifact's noise margin as a regression. Exit status 1
// means at least one regression — wire it between two bench runs to turn
// the artifacts into a perf gate:
//
//	go run ./scripts/benchcompare BENCH_pipeline.json /tmp/new.json
//
// -tiers flips benchcompare into its second role: instead of diffing two
// commits, it reads ONE artifact whose rows carry per-engine
// measurements (schema v3: bench scripts sweep walker and compiled) and
// pairs the walker/compiled rows of otherwise-identical identity. The
// walker is the reference baseline, so the report is the compiled
// tier's wall-clock speedup over it (walker par_ms / compiled par_ms);
// a pair where the compiled tier is *slower* than the walker beyond the
// artifact's noise margin is a regression (exit 1) — the fast path must
// never lose to the oracle it is checked against.
//
//	go run ./scripts/benchcompare -tiers BENCH_parallel.json
//
// Usage: go run ./scripts/benchcompare [-margin 0] old.json new.json
//
//	benchcompare -tiers [-margin 0] one.json
//
// (-margin overrides the noise margin recorded in the new artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	margin := flag.Float64("margin", 0, "noise margin override (0 = use the new artifact's meta.noise_margin)")
	tiers := flag.Bool("tiers", false, "diff the walker/compiled rows inside ONE artifact and report per-tier speedup")
	flag.Parse()
	if *tiers {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchcompare -tiers [-margin 0.95] one.json")
			os.Exit(2)
		}
		if err := runTiers(flag.Arg(0), *margin); err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-margin 0.95] old.json new.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *margin); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, margin float64) error {
	oldDoc, err := load(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return err
	}

	oldMeta, newMeta := metaOf(oldDoc), metaOf(newDoc)
	if os, ns := schemaOf(oldMeta), schemaOf(newMeta); os != ns {
		return fmt.Errorf("schema mismatch: %s is v%d, %s is v%d — regenerate the older artifact first",
			oldPath, os, newPath, ns)
	}
	if margin <= 0 {
		margin = 0.95
		if m, ok := newMeta["noise_margin"].(float64); ok && m > 0 {
			margin = m
		}
	}
	if oc, nc := commitOf(oldMeta), commitOf(newMeta); oc != "" && nc != "" && oc != nc {
		fmt.Printf("comparing commits %s -> %s (margin %.2f)\n", oc, nc, margin)
	} else {
		fmt.Printf("comparing %s -> %s (margin %.2f)\n", oldPath, newPath, margin)
	}

	oldRows, newRows := map[string]float64{}, map[string]float64{}
	collect(oldDoc, "", oldRows)
	collect(newDoc, "", newRows)
	if len(newRows) == 0 {
		return fmt.Errorf("%s: no speedup fields found", newPath)
	}

	keys := make([]string, 0, len(newRows))
	for k := range newRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	for _, k := range keys {
		nv := newRows[k]
		ov, ok := oldRows[k]
		if !ok {
			fmt.Printf("  NEW        %-40s %.3fx\n", k, nv)
			continue
		}
		switch {
		case nv < ov*margin:
			regressions++
			fmt.Printf("  REGRESSION %-40s %.3fx -> %.3fx (below %.3fx floor)\n", k, ov, nv, ov*margin)
		case ov > 0 && nv > ov/margin:
			fmt.Printf("  improved   %-40s %.3fx -> %.3fx\n", k, ov, nv)
		default:
			fmt.Printf("  ok         %-40s %.3fx -> %.3fx\n", k, ov, nv)
		}
	}
	for k, ov := range oldRows {
		if _, ok := newRows[k]; !ok {
			fmt.Printf("  DROPPED    %-40s was %.3fx\n", k, ov)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d speedup regression(s) beyond the noise margin", regressions)
	}
	fmt.Println("no regressions")
	return nil
}

func load(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func metaOf(doc map[string]any) map[string]any {
	if m, ok := doc["meta"].(map[string]any); ok {
		return m
	}
	return map[string]any{}
}

func schemaOf(meta map[string]any) int {
	if v, ok := meta["schema"].(float64); ok {
		return int(v)
	}
	return 0 // pre-meta artifacts (schema 1 had no meta block)
}

func commitOf(meta map[string]any) string {
	s, _ := meta["git_commit"].(string)
	return s
}

// runTiers implements -tiers: pair up the walker/compiled rows of one
// schema-v3 artifact by their engine-less identity and report the
// compiled tier's wall-clock speedup over the walker reference.
func runTiers(path string, margin float64) error {
	doc, err := load(path)
	if err != nil {
		return err
	}
	meta := metaOf(doc)
	if s := schemaOf(meta); s < 3 {
		return fmt.Errorf("%s: schema v%d has no per-engine rows — regenerate with the current bench scripts (-engine both)", path, s)
	}
	if margin <= 0 {
		margin = 0.95
		if m, ok := meta["noise_margin"].(float64); ok && m > 0 {
			margin = m
		}
	}
	fmt.Printf("tier diff of %s (margin %.2f)\n", path, margin)

	rows := map[string]map[string]float64{}
	collectTiers(doc, "", rows)

	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	pairs, regressions := 0, 0
	for _, k := range keys {
		wk, haveWk := rows[k]["walker"]
		cp, haveCp := rows[k]["compiled"]
		if !haveWk || !haveCp {
			for eng, ms := range rows[k] {
				fmt.Printf("  UNPAIRED   %-40s engine=%s %.3fms (no counterpart row)\n", k, eng, ms)
			}
			continue
		}
		pairs++
		if cp <= 0 {
			fmt.Printf("  ok         %-40s walker %.3fms, compiled too fast to time\n", k, wk)
			continue
		}
		tier := wk / cp
		if tier < margin {
			regressions++
			fmt.Printf("  REGRESSION %-40s compiled %.3fx of walker (%.3fms -> %.3fms, floor %.3fx)\n", k, tier, wk, cp, margin)
			continue
		}
		fmt.Printf("  ok         %-40s compiled %.2fx over walker (%.3fms -> %.3fms)\n", k, tier, wk, cp)
	}
	if pairs == 0 {
		return fmt.Errorf("%s: no walker/compiled row pairs found", path)
	}
	if regressions > 0 {
		return fmt.Errorf("%d tier regression(s): compiled slower than the walker beyond the noise margin", regressions)
	}
	fmt.Printf("%d tier pair(s), compiled never slower than the walker\n", pairs)
	return nil
}

// collectTiers walks the document and records every row's par_ms under
// its engine-less identity (benchmark/technique/workers), keyed by the
// row's engine — the pairing input of runTiers.
func collectTiers(v any, path string, out map[string]map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		p := path
		for _, idk := range [...]string{"benchmark", "technique"} {
			if s, ok := t[idk].(string); ok && s != "" {
				p = join(p, s)
			}
		}
		if w, ok := t["workers"].(float64); ok {
			p = join(p, fmt.Sprintf("workers=%d", int(w)))
		}
		eng, _ := t["engine"].(string)
		if ms, ok := t["par_ms"].(float64); ok && eng != "" {
			if out[p] == nil {
				out[p] = map[string]float64{}
			}
			out[p][eng] = ms
		}
		for k, c := range t {
			if k == "attribution" {
				continue
			}
			collectTiers(c, p, out)
		}
	case []any:
		for _, c := range t {
			collectTiers(c, path, out)
		}
	}
}

// collect walks the document and records every "speedup"-like field
// under a path built from the identifying fields of the objects that
// enclose it (benchmark name, technique, worker count, engine), so rows
// pair up across artifacts regardless of array order.
func collect(v any, path string, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		p := path
		for _, idk := range [...]string{"benchmark", "technique", "engine"} {
			if s, ok := t[idk].(string); ok && s != "" {
				p = join(p, s)
			}
		}
		if w, ok := t["workers"].(float64); ok {
			p = join(p, fmt.Sprintf("workers=%d", int(w)))
		}
		for _, sk := range [...]string{"speedup", "auto_speedup", "best_single_speedup"} {
			if f, ok := t[sk].(float64); ok {
				key := p
				if sk != "speedup" {
					key = join(p, sk)
				}
				out[key] = f
			}
		}
		for k, c := range t {
			if k == "attribution" {
				continue // traced-run internals, not a perf bar
			}
			collect(c, p, out)
		}
	case []any:
		for _, c := range t {
			collect(c, path, out)
		}
	}
}

func join(a, b string) string {
	if a == "" {
		return b
	}
	return a + "/" + b
}
