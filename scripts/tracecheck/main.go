// tracecheck validates a Chrome trace-event JSON file produced by
// internal/obs (benchpipeline -trace, noelle-load -trace, ...): the
// document must parse, contain at least one complete ("X") event, name
// every process and thread it uses, and keep each thread's event
// timestamps monotonically non-decreasing with non-negative durations.
// CI's trace-smoke step runs it over the pipeline bench's trace before
// uploading the file as a build artifact.
//
// Usage: go run ./scripts/tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

type doc struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("%s: not well-formed trace JSON: %w", path, err)
	}

	type lane struct{ pid, tid int }
	named := map[lane]bool{}
	procNamed := map[int]bool{}
	lastTs := map[lane]float64{}
	complete := 0
	for i, e := range d.TraceEvents {
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				procNamed[e.Pid] = true
			case "thread_name":
				named[lane{e.Pid, e.Tid}] = true
			}
		case "X":
			if e.Ts == nil || e.Dur == nil {
				return fmt.Errorf("event %d (%s): complete event missing ts/dur", i, e.Name)
			}
			if *e.Dur < 0 {
				return fmt.Errorf("event %d (%s): negative duration %g", i, e.Name, *e.Dur)
			}
			l := lane{e.Pid, e.Tid}
			if !procNamed[e.Pid] || !named[l] {
				return fmt.Errorf("event %d (%s): pid %d / tid %d not named by metadata", i, e.Name, e.Pid, e.Tid)
			}
			if prev, ok := lastTs[l]; ok && *e.Ts < prev {
				return fmt.Errorf("event %d (%s): timestamp %g before previous %g on pid %d tid %d",
					i, e.Name, *e.Ts, prev, e.Pid, e.Tid)
			}
			lastTs[l] = *e.Ts
			complete++
		default:
			return fmt.Errorf("event %d (%s): unexpected phase %q", i, e.Name, e.Ph)
		}
	}
	if complete == 0 {
		return fmt.Errorf("%s: no complete events — the traced run recorded nothing", path)
	}
	fmt.Printf("%s: ok (%d events, %d lanes, %d processes)\n", path, complete, len(lastTs), len(procNamed))
	return nil
}
