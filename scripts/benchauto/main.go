// benchauto records the auto-parallelizer study into a JSON artifact
// (make bench-auto → BENCH_auto.json). The measurement is
// eval.AutoStudy — the same harness behind `noelle-eval -only auto` —
// which applies each individual technique (doall, dswp, helix) and the
// auto orchestrator to both bundled benchmarks (the DOALL-friendly
// bench.ParallelProgram and the queue-bound bench.PipelineProgram) and
// races each lowered module's parallel dispatch against its -seq
// fallback. The artifact records, per benchmark, whether the
// orchestrator's measured speedup kept up with the best single
// technique, and which technique it chose per loop. Rows that lowered
// loops carry an attribution block from a separate traced run
// (internal/obs) decomposing where the seq-vs-par wall-clock gap went.
//
// Every leg runs on one interpreter execution tier (-engine, default
// the process default — the compiled tier); rows and the meta block
// record which, so benchcompare refuses to diff artifacts measured on
// different tiers as if they were the same experiment.
//
// Usage: go run ./scripts/benchauto [-cores 4] [-size 0]
//
//	[-queue-cap 0] [-engine walker|compiled] [-o BENCH_auto.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"noelle/internal/eval"
	"noelle/internal/interp"
)

// Row is one leg's measurement.
type Row struct {
	Technique string            `json:"technique"`
	Engine    string            `json:"engine"`
	Loops     int               `json:"loops"`
	Chosen    []string          `json:"chosen,omitempty"` // auto leg: fn/header=technique
	SeqMS     float64           `json:"seq_ms"`
	ParMS     float64           `json:"par_ms"`
	Speedup   float64           `json:"speedup"`
	Identical bool              `json:"identical"` // output bytes AND memory fingerprint
	Attrib    *eval.Attribution `json:"attribution,omitempty"`
}

// BenchmarkResult groups one benchmark's legs with the headline
// comparison.
type BenchmarkResult struct {
	Benchmark string `json:"benchmark"`
	Rows      []Row  `json:"rows"`
	// BestSingle is the best-measured individual technique and its
	// speedup; AutoSpeedup is the orchestrator's. AutoKeptUp reports
	// auto >= best single with a small noise margin (wall-clock ratios
	// on few-core machines hover around 1x, so a strict >= would flap on
	// measurement noise; the raw speedups are recorded for inspection).
	BestSingle        string  `json:"best_single"`
	BestSingleSpeedup float64 `json:"best_single_speedup"`
	AutoSpeedup       float64 `json:"auto_speedup"`
	AutoKeptUp        bool    `json:"auto_kept_up"`
}

// noiseMargin is the wall-clock tolerance of the kept-up comparison:
// auto must reach 95% of the best single technique's measured speedup.
// On a multicore machine the techniques separate far beyond this band
// (the selection effect is the point); the margin only absorbs run-to-
// run jitter, mirroring how CI treats the repo's other wall-clock bars.
// It is also recorded in the artifact's meta block for benchcompare.
const noiseMargin = 0.95

// Artifact is the written JSON document.
type Artifact struct {
	Size       int               `json:"size"`
	Cores      int               `json:"cores"`
	Meta       eval.BenchMeta    `json:"meta"`
	Benchmarks []BenchmarkResult `json:"benchmarks"`
}

func main() {
	cores := flag.Int("cores", 4, "core count for the plans and the dispatch cap")
	size := flag.Int("size", 0, "iteration count per loop (0 = bundled default)")
	queueCap := flag.Int("queue-cap", 0, "communication queue capacity (0 = default)")
	engine := flag.String("engine", "", "interpreter execution tier: walker|compiled (default: process default, see NOELLE_ENGINE)")
	out := flag.String("o", "BENCH_auto.json", "output JSON path")
	flag.Parse()

	if err := run(*cores, *size, *queueCap, *engine, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchauto:", err)
		os.Exit(1)
	}
}

func run(cores, size, queueCap int, engine, out string) error {
	eng, err := interp.ParseEngine(engine)
	if err != nil {
		return err
	}
	rows, err := eval.AutoStudy(size, cores, 0, queueCap, false, eng)
	if err != nil {
		return err
	}

	art := Artifact{
		Size:  size,
		Cores: cores,
		Meta:  eval.NewBenchMeta("make bench-auto", noiseMargin),
	}
	if art.Size == 0 {
		art.Size = 65536
	}
	for _, bm := range []string{"parallel", "pipeline"} {
		br := BenchmarkResult{Benchmark: bm}
		for _, r := range rows {
			if r.Benchmark != bm {
				continue
			}
			br.Rows = append(br.Rows, Row{
				Technique: r.Technique,
				Engine:    r.Engine,
				Loops:     r.Loops,
				Chosen:    r.Chosen,
				SeqMS:     float64(r.SeqWall.Microseconds()) / 1000,
				ParMS:     float64(r.ParWall.Microseconds()) / 1000,
				Speedup:   r.Measured,
				Identical: r.Identical,
				Attrib:    r.Attrib,
			})
			fmt.Fprintf(os.Stderr, "engine=%s %s %s loops=%d seq=%v par=%v measured=%.2fx identical=%v\n",
				r.Engine, bm, r.Technique, r.Loops, r.SeqWall.Round(time.Millisecond),
				r.ParWall.Round(time.Millisecond), r.Measured, r.Identical)
			if !r.Identical {
				// The artifact doubles as CI's equivalence guard: a
				// parallel leg that diverges from -seq must fail the
				// build, not just flip a JSON field.
				return fmt.Errorf("%s/%s: parallel output diverged from the sequential fallback", bm, r.Technique)
			}
		}
		if best := eval.BestSingle(rows, bm); best != nil {
			br.BestSingle = best.Technique
			br.BestSingleSpeedup = best.Measured
		}
		if autoR := eval.AutoRowFor(rows, bm); autoR != nil {
			br.AutoSpeedup = autoR.Measured
			br.AutoKeptUp = autoR.Measured >= br.BestSingleSpeedup*noiseMargin
			if autoR.Loops == 0 {
				return fmt.Errorf("%s: the auto orchestrator lowered nothing", bm)
			}
		}
		fmt.Fprintf(os.Stderr, "%s: auto %.2fx vs best single (%s) %.2fx\n",
			bm, br.AutoSpeedup, br.BestSingle, br.BestSingleSpeedup)
		art.Benchmarks = append(art.Benchmarks, br)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}
