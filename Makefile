GO ?= go

.PHONY: build test vet race bench bench-cache cache-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The manager's concurrency guarantees are only meaningful under -race.
race:
	$(GO) test -race ./internal/core/... ./internal/tools/ ./internal/abscache/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# The warm-load trajectory: cold (full alias solve per run) vs warm
# (persistent store decode per run) on the bundled whole-program module.
bench-cache:
	$(GO) test -bench 'FunctionPDG(Cold|Warm)' -benchtime=3x -run '^$$' .

# Two-process warm-load smoke check through the real CLIs: the second
# noelle-load run over the same input must build zero PDGs (asserted via
# noelle-cache stats).
cache-smoke:
	bash scripts/cache_smoke.sh
