GO ?= go

.PHONY: build test vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The manager's concurrency guarantees are only meaningful under -race.
race:
	$(GO) test -race ./internal/core/... ./internal/tools/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .
