GO ?= go

.PHONY: build test vet lint race tier-diff bench bench-cache bench-parallel bench-pipeline bench-auto bench-serve cache-smoke serve-smoke check-docs example-smoke trace-smoke campaign-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static hygiene in one command: vet, formatting drift, and the static
# verifier's own suite (tier staging, the hand-broken corpus, mutation
# tests over real DSWP/HELIX lowerings).
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -l flags:"; echo "$$out"; exit 1; fi
	$(GO) test ./internal/ir/ ./internal/irtext/ ./internal/verify/

# The manager's and the parallel runtime's concurrency guarantees are
# only meaningful under -race; run the whole tree (the speedup
# assertion is skipped — -race skews wall-clock ratios).
race:
	NOELLE_SKIP_SPEEDUP_TEST=1 $(GO) test -race ./...

# Execution-tier differential: the interpreter, communication-runtime,
# and evaluation suites (dispatch, queue/signal pipelines, wall-clock
# studies) must pass with either engine forced process-wide, under
# -race — the walker is the reference oracle, and the compiled tier has
# to be behaviourally indistinguishable from it even when every test in
# those suites runs on it. The final non-race run enforces the compiled
# tier's >= 2x wall-clock bar over the walker on bench.WholeProgram
# (TestCompiledTierSpeedup; its noise margin is documented at the
# assertion) plus the byte-identical corpus/pipeline agreement suite.
tier-diff:
	NOELLE_ENGINE=walker NOELLE_SKIP_SPEEDUP_TEST=1 $(GO) test -race ./internal/interp/... ./internal/queue/... ./internal/eval/
	NOELLE_ENGINE=compiled NOELLE_SKIP_SPEEDUP_TEST=1 $(GO) test -race ./internal/interp/... ./internal/queue/... ./internal/eval/
	$(GO) test -run 'TestTiersAgree|TestCompiledTierSpeedup' -v ./internal/interp/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# The warm-load trajectory: cold (full alias solve per run) vs warm
# (persistent store decode per run) on the bundled whole-program module.
bench-cache:
	$(GO) test -bench 'FunctionPDG(Cold|Warm)' -benchtime=3x -run '^$$' .

# Two-process warm-load smoke check through the real CLIs: the second
# noelle-load run over the same input must build zero PDGs (asserted via
# noelle-cache stats).
cache-smoke:
	bash scripts/cache_smoke.sh

# Compile-service smoke through the real daemon under -race: concurrent
# mixed requests, an identical burst that must coalesce, a warm re-run
# that must hit the resident session and byte-match a cold noelle-load
# run, then a graceful drain (asserted via the stats endpoint and a
# report diff — see scripts/serve_smoke.sh).
serve-smoke:
	bash scripts/serve_smoke.sh

# Warm-vs-cold service study: identical client fleets at several
# concurrency levels against a session-reusing daemon and a
# cold-per-request one, recorded as JSON with throughput and
# p50/p95/p99 latency. Gates on warm mean latency >= 2x better.
bench-serve:
	$(GO) run ./scripts/benchserve -mode bench -o BENCH_serve.json

# Seq-vs-parallel wall-clock of the interpreter's dispatch runtime on the
# DOALL-transformed bundled parallel benchmark, recorded as JSON. The
# speedup column only means something on a multi-core machine.
bench-parallel:
	$(GO) run ./scripts/benchparallel -workers 4 -o BENCH_parallel.json

# Seq/DSWP/HELIX wall-clock of the queue communication runtime on the
# bundled pipeline benchmark (stages over bounded queues, signal-guarded
# iterations), next to the SimulateDSWP/SimulateHELIX modeled numbers.
bench-pipeline:
	$(GO) run ./scripts/benchpipeline -cores 4 -o BENCH_pipeline.json

# The auto-parallelizer composition: each single technique and the auto
# orchestrator (per-loop technique selection over the machine cost
# model) raced on both bundled benchmarks, recorded as JSON. The
# orchestrator should keep up with the best single technique on each
# benchmark without being told which favours which.
bench-auto:
	$(GO) run ./scripts/benchauto -cores 4 -o BENCH_auto.json

# Observability smoke: the pipeline bench with -trace must produce a
# well-formed Chrome trace (monotonic per-lane timestamps, named
# processes/threads — validated by scripts/tracecheck), next to the
# usual BENCH_pipeline.json with its attribution block.
trace-smoke:
	$(GO) run ./scripts/benchpipeline -cores 4 -trace trace_pipeline.json -o BENCH_pipeline.json
	$(GO) run ./scripts/tracecheck trace_pipeline.json

# Differential fuzzing smoke under -race: 200 fixed-seed generated
# programs swept across every technique plus the auto orchestrator
# (both engines always run — walker vs compiled is an oracle), then the
# stress, fault-injection, and miscompile-injection legs. Fixed seeds
# keep the run deterministic and replayable; any failure writes a
# minimized .nir reproducer under fuzz-failures/. The inject leg exits
# non-zero unless the seeded miscompile is caught, so the harness's
# detection power is itself gated.
campaign-smoke:
	$(GO) run -race ./cmd/noelle-fuzz -leg campaign -seeds 200 -blocks 4 -arrays 3 -arraylen 32 \
		-matrix "tech=doall,dswp,helix,auto;cores=2;qcap=0" -parallel 4
	$(GO) run -race ./cmd/noelle-fuzz -leg stress -seeds 12 -blocks 4 -arrays 3 -arraylen 32
	$(GO) run -race ./cmd/noelle-fuzz -leg faults -seeds 12 -blocks 4 -arrays 3 -arraylen 32
	$(GO) run -race ./cmd/noelle-fuzz -leg inject -seeds 40 -blocks 4 -arrays 3 -arraylen 32

# Documentation consistency: markdown links resolve, cmd/README.md lists
# every binary under cmd/, and every registered tool is described there.
check-docs:
	$(GO) run ./scripts/checkdocs

# The examples/parallelize walkthrough, replayed through the real CLIs
# against its committed expected output.
example-smoke:
	bash scripts/example_smoke.sh
