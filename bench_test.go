// Package noelle's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each benchmark prints the same rows/series the paper reports; run
//
//	go test -bench=. -benchmem
//
// or `go run noelle/cmd/noelle-eval` for the plain-text artifacts.
// EXPERIMENTS.md records paper-reported vs measured values.
package noelle

import (
	"fmt"
	"sync"
	"testing"

	"noelle/internal/alias"
	"noelle/internal/bench"
	"noelle/internal/core"
	"noelle/internal/eval"
	"noelle/internal/ir"
	"noelle/internal/machine"
	"noelle/internal/pdg"
	"noelle/internal/profiler"
	"noelle/internal/tools/helix"
)

// Each artifact is printed once per `go test -bench` invocation.
var printOnce sync.Map

func emitOnce(b *testing.B, key, text string) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Println(text)
	}
}

// BenchmarkTable1Abstractions regenerates Table 1 (E1).
func BenchmarkTable1Abstractions(b *testing.B) {
	var rows []eval.InventoryRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table1Abstractions()
	}
	emitOnce(b, "t1", eval.FormatInventory("Table 1: NOELLE abstractions (this repo)", rows))
}

// BenchmarkTable2Tools regenerates Table 2 (E2).
func BenchmarkTable2Tools(b *testing.B) {
	var rows []eval.InventoryRow
	for i := 0; i < b.N; i++ {
		rows = eval.Table2Tools()
	}
	emitOnce(b, "t2", eval.FormatInventory("Table 2: NOELLE tools (this repo)", rows))
}

// BenchmarkTable3CustomTools regenerates Table 3 (E3).
func BenchmarkTable3CustomTools(b *testing.B) {
	var rows []eval.Table3Row
	for i := 0; i < b.N; i++ {
		rows = eval.Table3CustomTools()
	}
	emitOnce(b, "t3", eval.FormatTable3(rows))
}

// BenchmarkTable4UsageMatrix regenerates Table 4 (E4).
func BenchmarkTable4UsageMatrix(b *testing.B) {
	var rows []eval.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Table4UsageMatrix()
		if err != nil {
			b.Fatal(err)
		}
	}
	emitOnce(b, "t4", eval.FormatTable4(rows))
}

// BenchmarkFigure3Dependences regenerates Figure 3 (E5).
func BenchmarkFigure3Dependences(b *testing.B) {
	var rows []eval.Fig3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Figure3Dependences()
		if err != nil {
			b.Fatal(err)
		}
	}
	emitOnce(b, "f3", eval.FormatFigure3(rows))
}

// BenchmarkFigure4Invariants regenerates Figure 4 (E6).
func BenchmarkFigure4Invariants(b *testing.B) {
	var rows []eval.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Figure4Invariants()
		if err != nil {
			b.Fatal(err)
		}
	}
	emitOnce(b, "f4", eval.FormatFigure4(rows))
}

// BenchmarkGoverningIVs regenerates the Section 4.3 counts (E7).
func BenchmarkGoverningIVs(b *testing.B) {
	var g eval.GovIVResult
	for i := 0; i < b.N; i++ {
		var err error
		g, err = eval.GoverningIVs()
		if err != nil {
			b.Fatal(err)
		}
	}
	emitOnce(b, "goviv", fmt.Sprintf(
		"Section 4.3: governing IVs across %d loops: LLVM-style %d, NOELLE %d (paper: 11 vs 385)",
		g.Loops, g.LLVMTotal, g.NoelleTotal))
}

// BenchmarkFigure5Speedups regenerates Figure 5 (E8).
func BenchmarkFigure5Speedups(b *testing.B) {
	var rows []eval.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Figure5Speedups([]bench.Suite{bench.PARSEC, bench.MiBench}, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	emitOnce(b, "f5", eval.FormatFigure5("Figure 5: PARSEC + MiBench program speedups", rows, 12))
}

// BenchmarkSPECSpeedups regenerates the Section 4.4 SPEC study (E9).
func BenchmarkSPECSpeedups(b *testing.B) {
	var rows []eval.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Figure5Speedups([]bench.Suite{bench.SPEC}, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	emitOnce(b, "spec", eval.FormatFigure5("Section 4.4: SPEC CPU2017 program speedups", rows, 12))
}

// BenchmarkDeadFunctionElimination regenerates the Section 4.5 study (E10).
func BenchmarkDeadFunctionElimination(b *testing.B) {
	var rows []eval.DeadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.DeadFunctionStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	emitOnce(b, "dead", eval.FormatDeadStudy(rows))
}

// BenchmarkInvariantAlgorithms contrasts Algorithm 1 and Algorithm 2
// directly (E11): same corpus, both detectors, wall-clock included.
func BenchmarkInvariantAlgorithms(b *testing.B) {
	var rows []eval.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.Figure4Invariants()
		if err != nil {
			b.Fatal(err)
		}
	}
	totL, totN := 0, 0
	for _, r := range rows {
		totL += r.LLVMAbs
		totN += r.NoelleAbs
	}
	emitOnce(b, "inv-alg", fmt.Sprintf(
		"Algorithms 1 vs 2: low-level %d invariants, PDG-powered %d (x%.2f)",
		totL, totN, float64(totN)/float64(max(totL, 1))))
}

// ---- ablations (DESIGN.md "Design choices worth ablating") ----

// BenchmarkFunctionPDGCold measures the cold path the persistent
// abstraction store (internal/abscache) exists to avoid: every iteration
// pays the whole-module Andersen solve plus a from-scratch PDG build for
// every defined function.
func BenchmarkFunctionPDGCold(b *testing.B) {
	m := cacheBenchModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := core.New(m, core.DefaultOptions())
		buildAllPDGs(b, n, m)
	}
}

// BenchmarkFunctionPDGWarm measures the warm path: a fresh manager per
// iteration (simulating a new process) loads every PDG from a pre-
// populated store by structural fingerprint — fingerprint walk + record
// decode, no alias analysis. The ratio to BenchmarkFunctionPDGCold is
// the store's speedup (the PR's acceptance bar is >= 5x).
func BenchmarkFunctionPDGWarm(b *testing.B) {
	m := cacheBenchModule(b)
	dir := b.TempDir()
	opts := core.DefaultOptions()
	opts.CacheDir = dir
	prewarm := core.New(m, opts)
	if err := prewarm.StoreErr(); err != nil {
		b.Fatal(err)
	}
	buildAllPDGs(b, prewarm, m)
	if err := prewarm.CloseStore(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := core.New(m, opts)
		buildAllPDGs(b, n, m)
		b.StopTimer()
		builds, _, _ := n.CacheStats()
		if builds != 0 {
			b.Fatalf("warm iteration built %d PDGs from scratch", builds)
		}
		if err := n.CloseStore(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func cacheBenchModule(b *testing.B) *ir.Module {
	b.Helper()
	m, err := bench.WholeProgram()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func buildAllPDGs(b *testing.B, n *core.Noelle, m *ir.Module) {
	b.Helper()
	for _, f := range m.Functions {
		if !f.IsDeclaration() {
			n.FunctionPDG(f)
		}
	}
}

// BenchmarkAblationDemandDriven measures what demand-driven construction
// saves: loading the layer and asking for nothing vs eagerly materializing
// every abstraction for every function.
func BenchmarkAblationDemandDriven(b *testing.B) {
	bm, err := bench.ByName("streamcluster")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("load-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.New(m, core.DefaultOptions())
		}
	})
	b.Run("eager-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := core.New(m, core.DefaultOptions())
			n.CallGraph()
			for _, f := range m.Functions {
				if f.IsDeclaration() {
					continue
				}
				n.FunctionPDG(f)
				for _, node := range n.Forest(f).Nodes() {
					n.Loop(node.LS)
				}
			}
		}
	})
}

// BenchmarkAblationAliasStacks measures PDG memory-dependence precision
// and cost per alias stack (type-basic only, Andersen only, combined).
func BenchmarkAblationAliasStacks(b *testing.B) {
	bm, err := bench.ByName("swaptions")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mk func() *pdg.Builder) {
		disproved, total := 0, 0
		for i := 0; i < b.N; i++ {
			builder := mk()
			disproved, total = 0, 0
			for _, f := range m.Functions {
				if f.IsDeclaration() {
					continue
				}
				t, d := builder.PotentialMemoryPairs(f)
				total += t
				disproved += d
			}
		}
		b.ReportMetric(100*float64(disproved)/float64(max(total, 1)), "%disproved")
	}
	b.Run("type-basic", func(b *testing.B) {
		run(b, func() *pdg.Builder { return pdg.NewBaselineBuilder(m) })
	})
	b.Run("andersen", func(b *testing.B) {
		run(b, func() *pdg.Builder {
			pt := alias.NewPointsTo(m)
			return &pdg.Builder{Mod: m, AA: alias.AndersenAA{PT: pt}, PT: pt}
		})
	})
	b.Run("combined", func(b *testing.B) {
		run(b, func() *pdg.Builder { return pdg.NewBuilder(m) })
	})
}

// BenchmarkAblationHelixSched measures the SCD header-shrinking pass's
// effect on HELIX's simulated time (plans with and without it).
func BenchmarkAblationHelixSched(b *testing.B) {
	bm, err := bench.ByName("rawcaudio")
	if err != nil {
		b.Fatal(err)
	}
	for _, optimized := range []bool{false, true} {
		name := "sched-off"
		if optimized {
			name = "sched-on"
		}
		b.Run(name, func(b *testing.B) {
			var par int64
			for i := 0; i < b.N; i++ {
				m, err := bm.Compile()
				if err != nil {
					b.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.MinHotness = 0
				n := core.New(m, opts)
				res := helix.Run(n, optimized, helix.Exec{})
				par = 0
				for _, p := range res.Plans {
					_, pp, err := helix.Simulate(n, p, 12)
					if err != nil {
						b.Fatal(err)
					}
					par += pp
				}
			}
			b.ReportMetric(float64(par), "sim-cycles")
		})
	}
}

// BenchmarkAblationChunking sweeps DOALL's chunk size (the IVS use case).
func BenchmarkAblationChunking(b *testing.B) {
	bm, err := bench.ByName("bitcnts")
	if err != nil {
		b.Fatal(err)
	}
	m, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	prof, err := profiler.Collect(m)
	if err != nil {
		b.Fatal(err)
	}
	prof.Embed()
	opts := core.DefaultOptions()
	opts.MinHotness = 0
	n := core.New(m, opts)
	cfg := machine.DefaultConfig(n.Arch(), 12)

	// Hot loop: the popcount reduction in main.
	var invs []*machine.Invocation
	for _, ls := range n.HotLoops() {
		if ls.Fn.Nam != "main" {
			continue
		}
		iv, err := machine.AttributeLoopCosts(n.Mod, ls.Nat, map[*ir.Instr]int{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(iv) > 0 && machine.SequentialCycles(iv) > machine.SequentialCycles(invs) {
			invs = iv
		}
	}
	if len(invs) == 0 {
		b.Fatal("no hot loop found")
	}
	for _, chunk := range []int{1, 4, 8, 32, 128} {
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			var par int64
			for i := 0; i < b.N; i++ {
				par = machine.SimulateAll(invs, func(inv *machine.Invocation) int64 {
					return machine.SimulateDOALL(inv, cfg, chunk)
				})
			}
			b.ReportMetric(float64(par), "sim-cycles")
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
