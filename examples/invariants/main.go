// Invariants: the paper's Section 2.5 head-to-head. The same loop is
// analyzed with Algorithm 1 (the low-level operand/alias/dominator test)
// and Algorithm 2 (the PDG-powered recursion NOELLE's INV uses); the
// PDG-powered version finds the invariant chain the low-level one misses,
// and LICM hoists it, which the cost model confirms.
//
//	go run ./examples/invariants
package main

import (
	"fmt"
	"log"

	"noelle/internal/alias"
	"noelle/internal/analysis"
	"noelle/internal/core"
	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/minic"
	"noelle/internal/passes"
	"noelle/internal/tools/baseline"
	"noelle/internal/tools/licm"
)

const src = `
int table[64];
int bias = 17;
int gain = 3;

// The kernel writes through a pointer parameter. The low-level algorithm
// only has type/basic alias analysis: it cannot prove the stores through t
// leave bias and gain alone, so the loads (and the whole chain computed
// from them) stay in the loop. NOELLE's PDG is powered by whole-program
// points-to analysis, which proves t can only point at table.
int kernel(int *t) {
  int i;
  int acc = 0;
  for (i = 0; i < 2000; i = i + 1) {
    int k = bias * gain + 7;
    int idx = i % 64;
    t[idx] = k + idx;
    acc = acc + t[idx];
  }
  return acc;
}

int main() {
  int acc = kernel(&table[0]);
  print_i64(acc);
  return acc % 256;
}
`

func main() {
	m, err := minic.Compile("invariants", src)
	if err != nil {
		log.Fatal(err)
	}
	passes.Optimize(m)
	kernelFn := m.FunctionByName("kernel")

	// Algorithm 1: low-level detection.
	li := analysis.NewLoopInfo(kernelFn)
	dt := analysis.NewDomTree(kernelFn)
	for _, nat := range li.TopLevel {
		low := baseline.InvariantsLLVM(kernelFn, nat, dt, alias.TypeBasicAA{})
		fmt.Printf("Algorithm 1 (low-level): %d invariants\n", len(low))
	}

	// Algorithm 2: the INV abstraction over the PDG.
	n := core.New(m, core.DefaultOptions())
	for _, node := range n.Forest(kernelFn).Roots {
		l := n.Loop(node.LS)
		fmt.Printf("Algorithm 2 (PDG):       %d invariants\n", l.Invariants.Count())
		for _, in := range l.Invariants.List() {
			fmt.Printf("  invariant: %s\n", in)
		}
	}

	// Hoist and measure with the cost model.
	before, out0 := runCycles(m)
	res := licm.Run(n)
	after, out1 := runCycles(m)
	fmt.Printf("LICM hoisted %d instructions: %d -> %d cycles (%.1f%% less work)\n",
		res.Hoisted, before, after, 100*float64(before-after)/float64(before))
	if out0 != out1 {
		fmt.Println("SEMANTICS CHANGED ✗")
	} else {
		fmt.Println("semantics preserved ✓")
	}
}

func runCycles(m *ir.Module) (int64, string) {
	it := interp.New(ir.CloneModule(m))
	if _, err := it.Run(); err != nil {
		log.Fatal(err)
	}
	return it.Cycles, it.Output.String()
}
