// Quickstart: compile a small program, load the NOELLE layer, and query
// its abstractions — the PDG, the complete call graph, and the full loop
// abstraction (structure, invariants, induction variables, reductions,
// aSCCDAG).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"noelle/internal/core"
	"noelle/internal/minic"
	"noelle/internal/passes"
)

const src = `
int data[128];
int scale = 3;

int weigh(int v) { return v * scale; }

int main() {
  int i;
  for (i = 0; i < 128; i = i + 1) { data[i] = i % 17; }
  int sum = 0;
  for (i = 0; i < 128; i = i + 1) {
    sum = sum + weigh(data[i]);
  }
  print_i64(sum);
  return sum % 256;
}
`

func main() {
	// 1. Frontend + standard pipeline (the "clang -O2" of this substrate).
	m, err := minic.Compile("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	passes.Optimize(m)

	// 2. Load the NOELLE layer. Nothing is computed yet: abstractions
	//    materialize on first request (and the manager records what you
	//    asked for).
	n := core.New(m, core.DefaultOptions())

	// 3. The program dependence graph of main.
	mainFn := m.FunctionByName("main")
	g := n.FunctionPDG(mainFn)
	fmt.Printf("PDG(main): %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// 4. The complete call graph: weigh is invoked from main.
	cg := n.CallGraph()
	for _, callee := range cg.Callees(mainFn) {
		e := cg.EdgeBetween(mainFn, callee)
		fmt.Printf("call edge: main -> %s (must=%v, %d sites)\n", callee.Nam, e.Must, len(e.Subs))
	}

	// 5. The loop abstraction L for each top-level loop of main.
	for _, node := range n.Forest(mainFn).Roots {
		l := n.Loop(node.LS)
		giv := l.IVs.GoverningIV()
		fmt.Printf("loop %s:\n", node.LS.Header.Nam)
		if giv != nil {
			step, _ := giv.StepValue()
			fmt.Printf("  governing IV %s, step %d\n", giv.Phi.Ident(), step)
		}
		if tc, ok := l.IVs.TripCount(); ok {
			fmt.Printf("  trip count %d\n", tc)
		}
		ind, seq, red := l.SCCDAG.Counts()
		fmt.Printf("  aSCCDAG: %d independent, %d sequential, %d reducible\n", ind, seq, red)
		fmt.Printf("  invariants: %d, reductions: %d, DOALL-able: %v\n",
			l.Invariants.Count(), len(l.Reductions.Reductions), l.IsDOALL())
	}

	// 6. The demand-driven manager tracked every abstraction we touched.
	fmt.Printf("abstractions requested: %v\n", n.Requested())
}
