int a[2048];
int b[2048];

int main() {
  int i;
  for (i = 0; i < 2048; i = i + 1) {
    b[i] = (i * 7 + 3) % 4093 + 1;
  }

  /* DOALL-friendly: independent stores plus a privatizable reduction. */
  int s = 0;
  for (i = 0; i < 2048; i = i + 1) {
    int x = b[i] * b[i] % 65521;
    a[i] = x + b[i] * 3;
    s = s + x % 127;
  }

  /* Order-sensitive recurrence behind a heavy independent chain: DOALL
     must reject this loop, the pipelining techniques compete for it. */
  int acc = 1;
  for (i = 0; i < 2048; i = i + 1) {
    int x = b[i];
    int t1 = (x * x + i) % 65521;
    int t2 = (t1 * t1 + x) % 32749;
    int t3 = (t2 * t2 + t1) % 16381;
    int t4 = (t3 * t3 + t2) % 8191;
    acc = (acc * 3 + t4) % 65521;
  }

  print_i64(s);
  print_i64(acc);
  return (s + acc) % 251;
}
