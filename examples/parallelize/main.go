// Parallelize: the paper's headline use case. A dot-product-style kernel
// is parallelized by the DOALL custom tool (task extraction, environment,
// per-worker reductions); the example verifies semantics by running both
// versions, reports the simulated multicore speedup the machine model
// predicts for the parallel schedule, and — since the dispatched tasks
// now run concurrently on real cores — the measured wall-clock of the
// parallel run against the interpreter's -seq fallback.
//
//	go run ./examples/parallelize
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"noelle/internal/analysis"
	"noelle/internal/core"
	"noelle/internal/interp"
	"noelle/internal/ir"
	"noelle/internal/machine"
	"noelle/internal/minic"
	"noelle/internal/passes"
	"noelle/internal/tools/doall"
)

const src = `
int a[4096];
int b[4096];

int main() {
  int i;
  for (i = 0; i < 4096; i = i + 1) {
    a[i] = i % 101;
    b[i] = (i * 7) % 103;
  }
  int dot = 0;
  for (i = 0; i < 4096; i = i + 1) {
    dot = dot + a[i] * b[i];
  }
  print_i64(dot);
  return dot % 256;
}
`

func main() {
	m, err := minic.Compile("dotprod", src)
	if err != nil {
		log.Fatal(err)
	}
	passes.Optimize(m)

	// Run the sequential version.
	seqModule := ir.CloneModule(m)
	it0 := interp.New(seqModule)
	r0, err := it0.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: exit=%d output=%q cycles=%d\n", r0, it0.Output.String(), it0.Cycles)

	// Predict the parallel schedule's timing before transforming: measure
	// per-iteration costs of the hot loop and evaluate the DOALL
	// recurrence at several core counts.
	mainFn := m.FunctionByName("main")
	li := analysis.NewLoopInfo(mainFn)
	arch := core.New(m, core.DefaultOptions()).Arch()
	for _, nat := range li.TopLevel {
		invs, err := machine.AttributeLoopCosts(m, nat, map[*ir.Instr]int{}, 1)
		if err != nil || len(invs) == 0 {
			continue
		}
		seq := machine.SequentialCycles(invs)
		if seq < 10000 {
			continue // the init loop; report the hot one
		}
		fmt.Printf("hot loop %s: %d sequential cycles\n", nat.Header.Nam, seq)
		for _, cores := range []int{2, 4, 8, 12} {
			cfg := machine.DefaultConfig(arch, cores)
			par := machine.SimulateAll(invs, func(inv *machine.Invocation) int64 {
				return machine.SimulateDOALL(inv, cfg, 8)
			})
			fmt.Printf("  %2d cores: %d cycles (%.2fx)\n", cores, par, float64(seq)/float64(par))
		}
	}

	// Transform for real and verify semantics.
	opts := core.DefaultOptions()
	opts.MinHotness = 0
	n := core.New(m, opts)
	res, err := doall.Run(n)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Parallelized {
		fmt.Printf("parallelized loop %s in @%s (task %s)\n", p.Header, p.Fn, p.TaskName)
	}
	it1 := interp.New(m)
	r1, err := it1.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel:   exit=%d output=%q\n", r1, it1.Output.String())
	if r0 == r1 && it0.Output.String() == it1.Output.String() {
		fmt.Println("semantics preserved ✓")
	} else {
		fmt.Println("SEMANTICS CHANGED ✗")
	}

	// Measured wall-clock: the same transformed module, -seq vs parallel
	// dispatch (meaningful on multi-core machines).
	timeRun := func(seqMode bool) time.Duration {
		it := interp.New(m)
		it.SeqDispatch = seqMode
		start := time.Now()
		if _, err := it.Run(); err != nil {
			log.Fatal(err)
		}
		return time.Since(start)
	}
	seqD, parD := timeRun(true), timeRun(false)
	fmt.Printf("wall-clock: -seq %v, parallel %v (%.2fx on %d CPUs)\n",
		seqD, parD, float64(seqD)/float64(parD), runtime.NumCPU())
}
